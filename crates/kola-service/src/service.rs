//! The concurrent optimization service: bounded queue, worker pool, panic
//! isolation, and the semantic gate.
//!
//! Request lifecycle (README "Serving" has the picture):
//!
//! ```text
//! submit ──full?──▶ Overloaded (structured rejection, never blocks)
//!    │
//!    ▼ queued (deadline anchored here: queue wait counts)
//! worker: parse text ──err──▶ Invalid
//!    │
//!    ▼ ladder: fast ▷ reference ▷ passthrough   (each rung: retry once,
//!    │          under remaining deadline, panics caught & attributed)
//!    ▼ semantic gate (optional): plan ≡ input on a sample database,
//!    │          else degrade to Passthrough
//!    ▼ reply: Optimized{rung} | Passthrough
//! ```
//!
//! Workers run on dedicated threads with oversized stacks (deep-term
//! traversals are explicit-stack throughout the engine layer, but debug
//! evaluator frames are large) and wrap each request in `catch_unwind`:
//! the ladder already isolates poison-rule panics, so anything reaching
//! the worker boundary is counted in
//! [`Service::unexpected_panics`] and answered with `Invalid` — the
//! thread, and the service, survive.

use crate::breaker::Breaker;
use crate::ladder::Ladder;
use crate::request::{Outcome, Payload, Request, Response};
use kola::Db;
use kola_exec::datagen::{generate, DataSpec};
use kola_rewrite::{Catalog, PropDb, QuarantineReport};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread;
use std::time::Instant;

/// Service-wide limits and tuning.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads.
    pub workers: usize,
    /// Work-queue capacity; submissions beyond it are shed as
    /// [`Outcome::Overloaded`].
    pub queue_capacity: usize,
    /// Cross-request breaker threshold: open a rule after this many
    /// requests in which it was implicated in a failure.
    pub breaker_threshold: usize,
    /// Reject text payloads larger than this (bytes). Text parsing is
    /// recursive; bounding the input bounds the parse.
    pub max_request_bytes: usize,
    /// Worker stack size in bytes.
    pub stack_size: usize,
    /// Run the semantic gate: evaluate input and plan on a small generated
    /// database and degrade to passthrough if they disagree.
    pub verify: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            queue_capacity: 64,
            breaker_threshold: 3,
            max_request_bytes: 64 * 1024,
            stack_size: 16 * 1024 * 1024,
            verify: false,
        }
    }
}

struct Job {
    id: u64,
    request: Request,
    submitted: Instant,
    deadline: Option<Instant>,
    reply: mpsc::Sender<Response>,
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    catalog: Catalog,
    props: PropDb,
    breaker: Breaker,
    verify_db: Option<Db>,
    queue: Mutex<QueueState>,
    cv: Condvar,
    capacity: usize,
    max_request_bytes: usize,
    unexpected_panics: AtomicUsize,
}

/// A ticket for a queued request; [`Pending::wait`] blocks for the reply.
pub struct Pending {
    id: u64,
    rx: mpsc::Receiver<Response>,
}

impl Pending {
    /// The service-assigned request id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Block until the worker replies. A worker always replies — every
    /// admitted request terminates with a classified outcome.
    pub fn wait(self) -> Response {
        self.rx
            .recv()
            .expect("worker dropped reply channel without responding")
    }
}

/// The running service. Dropping it drains the queue and joins the
/// workers.
pub struct Service {
    shared: Arc<Shared>,
    workers: Vec<thread::JoinHandle<()>>,
    next_id: AtomicU64,
}

impl Service {
    /// Start a service over the paper catalog with `config`.
    pub fn start(config: ServiceConfig) -> Service {
        // Poison-rule panics are caught and attributed; keep their default
        // hook spam out of service logs (chains to the previous hook for
        // everything else).
        kola_rewrite::fault::silence_poison_panics();
        let shared = Arc::new(Shared {
            catalog: Catalog::paper(),
            props: PropDb::new(),
            breaker: Breaker::new(config.breaker_threshold),
            verify_db: config.verify.then(|| generate(&DataSpec::small(123))),
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
            capacity: config.queue_capacity.max(1),
            max_request_bytes: config.max_request_bytes,
            unexpected_panics: AtomicUsize::new(0),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("kola-svc-{i}"))
                    .stack_size(config.stack_size)
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn service worker")
            })
            .collect();
        Service {
            shared,
            workers,
            next_id: AtomicU64::new(0),
        }
    }

    /// Submit a request. `Err` carries the structured rejection (a full
    /// queue or an oversized/invalid-at-the-door payload); `Ok` is a ticket
    /// for the eventual reply. Never blocks.
    // The Err arm is the cold shed path; boxing it would tax every caller
    // for a variant built only under overload.
    #[allow(clippy::result_large_err)]
    pub fn submit(&self, request: Request) -> Result<Pending, Response> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        if let Payload::Text(src) = &request.payload {
            if src.len() > self.shared.max_request_bytes {
                return Err(Response::rejected(
                    id,
                    Outcome::Invalid,
                    format!(
                        "request too large: {} bytes (limit {})",
                        src.len(),
                        self.shared.max_request_bytes
                    ),
                ));
            }
        }
        let submitted = Instant::now();
        let deadline = request.options.timeout.map(|t| submitted + t);
        let (tx, rx) = mpsc::channel();
        let job = Job {
            id,
            request,
            submitted,
            deadline,
            reply: tx,
        };
        {
            let mut q = self.shared.queue.lock().unwrap();
            if q.jobs.len() >= self.shared.capacity {
                return Err(Response::rejected(
                    id,
                    Outcome::Overloaded,
                    format!("work queue full ({} requests)", self.shared.capacity),
                ));
            }
            q.jobs.push_back(job);
        }
        self.shared.cv.notify_one();
        Ok(Pending { id, rx })
    }

    /// Submit and wait: the synchronous client surface. An overloaded or
    /// rejected submission comes back as the rejection response itself, so
    /// every call yields exactly one classified [`Response`].
    pub fn call(&self, request: Request) -> Response {
        match self.submit(request) {
            Ok(pending) => pending.wait(),
            Err(rejection) => rejection,
        }
    }

    /// The cross-request circuit breaker (observe trips, reset rules).
    pub fn breaker(&self) -> &Breaker {
        &self.shared.breaker
    }

    /// Panics that reached the worker boundary (i.e. were *not* classified
    /// by the ladder's poison-rule isolation). The chaos soak asserts this
    /// stays zero.
    pub fn unexpected_panics(&self) -> usize {
        self.shared.unexpected_panics.load(Ordering::Relaxed)
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock().unwrap();
            q.shutdown = true;
        }
        self.shared.cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break job;
                }
                if q.shutdown {
                    return;
                }
                q = shared.cv.wait(q).unwrap();
            }
        };
        let id = job.id;
        let submitted = job.submitted;
        let reply = job.reply.clone();
        let outcome = catch_unwind(AssertUnwindSafe(|| handle(shared, job)));
        let response = outcome.unwrap_or_else(|_| {
            // Nothing should reach this boundary — the ladder catches
            // poison-rule panics itself. Count it, answer anyway.
            shared.unexpected_panics.fetch_add(1, Ordering::Relaxed);
            let mut r = Response::rejected(
                id,
                Outcome::Invalid,
                "internal: request handler panicked".to_string(),
            );
            r.latency = submitted.elapsed();
            r
        });
        // The client may have given up waiting; a dead receiver is fine.
        let _ = reply.send(response);
    }
}

fn handle(shared: &Shared, job: Job) -> Response {
    let Job {
        id,
        request,
        submitted,
        deadline,
        ..
    } = job;
    if let Some(hold) = request.options.hold_for {
        thread::sleep(hold);
    }
    let input = match &request.payload {
        Payload::Text(src) => match kola_frontend::parse_any_query(src) {
            Ok(q) => q,
            Err(e) => {
                let mut r = Response::rejected(id, Outcome::Invalid, e);
                r.latency = submitted.elapsed();
                return r;
            }
        },
        Payload::Ast(q) => q.clone(),
    };

    let ladder = Ladder {
        catalog: &shared.catalog,
        props: &shared.props,
        breaker: &shared.breaker,
    };
    let mut result = ladder.run(id, &input, &request.options, deadline);

    // Semantic gate: an optimized plan that disagrees with its input on
    // the sample database is worse than no optimization — degrade it.
    let mut gate_error = None;
    if let (Some(db), Outcome::Optimized { .. }) = (&shared.verify_db, &result.outcome) {
        if let Err(e) = kola_verify::check_plan_semantics(db, &input, &result.plan) {
            gate_error = Some(format!("semantic gate: {e}"));
            result.outcome = Outcome::Passthrough;
            result.plan = input;
            result.report = None;
            result.quarantine = QuarantineReport::default();
        }
    }

    let error = match (gate_error, result.failures.is_empty()) {
        (Some(g), true) => Some(g),
        (Some(g), false) => Some(format!("{g}; {}", result.failures.join("; "))),
        (None, false) => Some(result.failures.join("; ")),
        (None, true) => None,
    };
    Response {
        id,
        outcome: result.outcome,
        plan: Some(result.plan),
        report: result.report,
        quarantine: result.quarantine,
        panics: result.panics,
        retries: result.retries,
        error,
        latency: submitted.elapsed(),
    }
}
