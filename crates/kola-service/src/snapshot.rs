//! Read-mostly published rule-set snapshots.
//!
//! The breaker's state changes rarely (a trip, an operator reset); workers
//! need the active rule set on *every* request. Filtering the catalog under
//! the breaker's lock per request — what the ladder did before — puts a
//! shared mutex on the hot path and re-allocates the id list each time.
//! Instead the service publishes an immutable [`RuleSnapshot`] behind an
//! `Arc` and swaps it only when the breaker's generation moves:
//!
//! - **Readers** (workers) keep a cached `Arc<RuleSnapshot>` and pay one
//!   atomic load per request ([`Breaker::generation`]) to detect staleness.
//!   Steady state touches no lock.
//! - **Writers** are the workers themselves: the first one to observe a new
//!   generation rebuilds and publishes under the cell's lock
//!   (publish–subscribe with lazy publication — the breaker does not need
//!   to know about catalogs or cells, and a trip with no traffic behind it
//!   publishes nothing).
//!
//! The snapshot's `epoch` doubles as the engine-cache epoch
//! ([`kola_rewrite::Engine::set_epoch`]): memo entries and normal-subtree
//! marks recorded under one snapshot never survive into the next.

use crate::breaker::Breaker;
use kola_rewrite::Catalog;
use std::sync::{Arc, Mutex};

/// An immutable view of the served rule set at one breaker generation.
#[derive(Debug, Clone)]
pub struct RuleSnapshot {
    /// The breaker generation this snapshot was built at; also the engine
    /// cache epoch.
    pub epoch: u64,
    /// Forward catalog ids minus `disabled`, in catalog order — the rule
    /// set the reference rung resolves. Behind its own `Arc` so recording
    /// a trace shares the list instead of deep-cloning it per request.
    pub active: Arc<Vec<String>>,
    /// Open-breaker rule ids (sorted) — masked out of the fast engine's
    /// full-catalog candidate scan.
    pub disabled: Vec<String>,
}

impl RuleSnapshot {
    /// Snapshot for `epoch`: the catalog's forward orientation minus
    /// currently open breakers.
    pub fn build(epoch: u64, catalog: &Catalog, breaker: &Breaker) -> RuleSnapshot {
        let disabled = breaker.open_rules();
        let active = catalog
            .forward_ids()
            .into_iter()
            .filter(|id| !disabled.contains(id))
            .collect();
        RuleSnapshot {
            epoch,
            active: Arc::new(active),
            disabled,
        }
    }
}

/// The publication cell (see module docs). One per service, shared by all
/// workers.
#[derive(Debug)]
pub struct SnapshotCell {
    published: Mutex<Arc<RuleSnapshot>>,
}

impl SnapshotCell {
    /// A cell publishing `initial`.
    pub fn new(initial: RuleSnapshot) -> SnapshotCell {
        SnapshotCell {
            published: Mutex::new(Arc::new(initial)),
        }
    }

    /// The currently published snapshot (used to seed a worker's cache).
    pub fn load(&self) -> Arc<RuleSnapshot> {
        Arc::clone(&self.published.lock().unwrap())
    }

    /// Bring `cached` up to the breaker's current generation. The steady
    /// state — generation unchanged — is one atomic load and no locks. On
    /// change, the first reader in rebuilds and publishes; later readers
    /// clone the published `Arc`. Returns `true` iff `cached` was replaced.
    ///
    /// Build-then-verify closes the tag race: the generation is re-read
    /// after building, and because the breaker bumps it *inside* its state
    /// lock, a build that observed newer open-state than `epoch` names is
    /// guaranteed to see a newer generation here and rebuild.
    pub fn refresh(
        &self,
        cached: &mut Arc<RuleSnapshot>,
        catalog: &Catalog,
        breaker: &Breaker,
    ) -> bool {
        if cached.epoch == breaker.generation() {
            return false;
        }
        let mut published = self.published.lock().unwrap();
        while published.epoch != breaker.generation() {
            let epoch = breaker.generation();
            *published = Arc::new(RuleSnapshot::build(epoch, catalog, breaker));
        }
        let replaced = !Arc::ptr_eq(cached, &published);
        *cached = Arc::clone(&published);
        replaced
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refresh_tracks_trip_and_reset() {
        let catalog = Catalog::paper();
        let breaker = Breaker::new(1);
        let cell = SnapshotCell::new(RuleSnapshot::build(
            breaker.generation(),
            &catalog,
            &breaker,
        ));
        let mut cached = cell.load();
        assert_eq!(cached.epoch, 0);
        assert!(cached.disabled.is_empty());
        assert_eq!(cached.active.len(), catalog.len());
        // Steady state: no swap.
        assert!(!cell.refresh(&mut cached, &catalog, &breaker));

        // Trip: the next refresh publishes a snapshot without the rule.
        breaker.charge("app", 7);
        assert!(cell.refresh(&mut cached, &catalog, &breaker));
        assert_eq!(cached.epoch, 1);
        assert_eq!(cached.disabled, vec!["app".to_string()]);
        assert!(!cached.active.iter().any(|id| id == "app"));
        assert_eq!(cached.active.len(), catalog.len() - 1);

        // A second reader starting cold converges on the same snapshot.
        let mut other = cell.load();
        assert!(!cell.refresh(&mut other, &catalog, &breaker));
        assert!(Arc::ptr_eq(&cached, &other));

        // Reset: full set again, at a fresh epoch.
        breaker.reset("app");
        assert!(cell.refresh(&mut cached, &catalog, &breaker));
        assert_eq!(cached.epoch, 2);
        assert!(cached.disabled.is_empty());
        assert_eq!(cached.active.len(), catalog.len());
    }
}
