//! Read-mostly published rule-set snapshots.
//!
//! The breaker's state changes rarely (a trip, an operator reset); workers
//! need the active rule set on *every* request. Filtering the catalog under
//! the breaker's lock per request — what the ladder did before — puts a
//! shared mutex on the hot path and re-allocates the id list each time.
//! Instead the service publishes an immutable [`RuleSnapshot`] behind an
//! `Arc` and swaps it only when the breaker's generation moves:
//!
//! - **Readers** (workers) keep a cached `Arc<RuleSnapshot>` and pay one
//!   atomic load per request ([`Breaker::generation`]) to detect staleness.
//!   Steady state touches no lock.
//! - **Writers** are the workers themselves: the first one to observe a new
//!   generation rebuilds and publishes under the cell's lock
//!   (publish–subscribe with lazy publication — the breaker does not need
//!   to know about catalogs or cells, and a trip with no traffic behind it
//!   publishes nothing).
//!
//! The snapshot carries two epochs. `epoch` is the raw breaker generation
//! it was built at — the number cache-staleness checks compare against.
//! `engine_epoch` is what actually reaches
//! [`kola_rewrite::Engine::set_epoch`]: on a single-tenant service the two
//! coincide, but a multi-tenant service shares each worker's engine across
//! namespaces, and two tenants sitting at the *same* raw generation with
//! *different* disabled sets must not alias one memo epoch. The
//! [`EpochScope`] makes `generation ↦ generation · stride + index`
//! injective over (generation, tenant), so memo entries and normal-subtree
//! marks recorded under one tenant's snapshot never leak into another's.

use crate::breaker::Breaker;
use kola_rewrite::Catalog;
use std::sync::{Arc, Mutex};

/// Maps a tenant's raw breaker generation into the shared engine's epoch
/// space: `engine_epoch = generation * stride + index`, where `stride` is
/// the tenant count and `index` the tenant's slot. Injective across
/// tenants, so a shared worker engine can never confuse two namespaces'
/// rule masks. The identity scope (`index 0, stride 1`) is the
/// single-tenant case.
#[derive(Debug, Clone, Copy)]
pub struct EpochScope {
    index: u64,
    stride: u64,
}

impl Default for EpochScope {
    fn default() -> Self {
        EpochScope {
            index: 0,
            stride: 1,
        }
    }
}

impl EpochScope {
    /// Scope for tenant `index` of `stride` total tenants.
    pub fn new(index: u64, stride: u64) -> EpochScope {
        debug_assert!(stride > 0 && index < stride);
        EpochScope {
            index,
            stride: stride.max(1),
        }
    }

    /// The engine epoch for raw breaker generation `generation`.
    pub fn engine_epoch(&self, generation: u64) -> u64 {
        generation * self.stride + self.index
    }
}

/// An immutable view of the served rule set at one breaker generation.
#[derive(Debug, Clone)]
pub struct RuleSnapshot {
    /// The breaker generation this snapshot was built at (the number cache
    /// staleness is judged against).
    pub epoch: u64,
    /// The epoch handed to the shared worker engine's caches — the scoped
    /// image of `epoch` (identical to it on a single-tenant service).
    pub engine_epoch: u64,
    /// Forward catalog ids minus `disabled`, in catalog order — the rule
    /// set the reference rung resolves. Behind its own `Arc` so recording
    /// a trace shares the list instead of deep-cloning it per request.
    pub active: Arc<Vec<String>>,
    /// Open-breaker rule ids (sorted) — masked out of the fast engine's
    /// full-catalog candidate scan.
    pub disabled: Vec<String>,
}

impl RuleSnapshot {
    /// Snapshot for `epoch` under the identity scope: the catalog's
    /// forward orientation minus currently open breakers.
    pub fn build(epoch: u64, catalog: &Catalog, breaker: &Breaker) -> RuleSnapshot {
        RuleSnapshot::build_scoped(epoch, EpochScope::default(), catalog, breaker)
    }

    /// Snapshot for raw generation `epoch`, with the engine epoch mapped
    /// through `scope` (multi-tenant services).
    pub fn build_scoped(
        epoch: u64,
        scope: EpochScope,
        catalog: &Catalog,
        breaker: &Breaker,
    ) -> RuleSnapshot {
        let disabled = breaker.open_rules();
        let active = catalog
            .forward_ids()
            .into_iter()
            .filter(|id| !disabled.contains(id))
            .collect();
        RuleSnapshot {
            epoch,
            engine_epoch: scope.engine_epoch(epoch),
            active: Arc::new(active),
            disabled,
        }
    }
}

/// The publication cell (see module docs). One per service, shared by all
/// workers.
#[derive(Debug)]
pub struct SnapshotCell {
    published: Mutex<Arc<RuleSnapshot>>,
    scope: EpochScope,
}

impl SnapshotCell {
    /// A cell publishing `initial` under the identity epoch scope.
    pub fn new(initial: RuleSnapshot) -> SnapshotCell {
        SnapshotCell::scoped(initial, EpochScope::default())
    }

    /// A cell publishing `initial` whose rebuilds map engine epochs
    /// through `scope` (one per tenant on a multi-tenant service).
    pub fn scoped(initial: RuleSnapshot, scope: EpochScope) -> SnapshotCell {
        SnapshotCell {
            published: Mutex::new(Arc::new(initial)),
            scope,
        }
    }

    /// The currently published snapshot (used to seed a worker's cache).
    pub fn load(&self) -> Arc<RuleSnapshot> {
        Arc::clone(&self.published.lock().unwrap())
    }

    /// Bring `cached` up to the breaker's current generation. The steady
    /// state — generation unchanged — is one atomic load and no locks. On
    /// change, the first reader in rebuilds and publishes; later readers
    /// clone the published `Arc`. Returns `true` iff `cached` was replaced.
    ///
    /// Build-then-verify closes the tag race: the generation is re-read
    /// after building, and because the breaker bumps it *inside* its state
    /// lock, a build that observed newer open-state than `epoch` names is
    /// guaranteed to see a newer generation here and rebuild.
    pub fn refresh(
        &self,
        cached: &mut Arc<RuleSnapshot>,
        catalog: &Catalog,
        breaker: &Breaker,
    ) -> bool {
        if cached.epoch == breaker.generation() {
            return false;
        }
        let mut published = self.published.lock().unwrap();
        while published.epoch != breaker.generation() {
            let epoch = breaker.generation();
            *published = Arc::new(RuleSnapshot::build_scoped(
                epoch, self.scope, catalog, breaker,
            ));
        }
        let replaced = !Arc::ptr_eq(cached, &published);
        *cached = Arc::clone(&published);
        replaced
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refresh_tracks_trip_and_reset() {
        let catalog = Catalog::paper();
        let breaker = Breaker::new(1);
        let cell = SnapshotCell::new(RuleSnapshot::build(
            breaker.generation(),
            &catalog,
            &breaker,
        ));
        let mut cached = cell.load();
        assert_eq!(cached.epoch, 0);
        assert_eq!(
            cached.engine_epoch, cached.epoch,
            "identity scope: engine epoch is the raw generation"
        );
        assert!(cached.disabled.is_empty());
        assert_eq!(cached.active.len(), catalog.len());
        // Steady state: no swap.
        assert!(!cell.refresh(&mut cached, &catalog, &breaker));

        // Trip: the next refresh publishes a snapshot without the rule.
        breaker.charge("app", 7);
        assert!(cell.refresh(&mut cached, &catalog, &breaker));
        assert_eq!(cached.epoch, 1);
        assert_eq!(cached.disabled, vec!["app".to_string()]);
        assert!(!cached.active.iter().any(|id| id == "app"));
        assert_eq!(cached.active.len(), catalog.len() - 1);

        // A second reader starting cold converges on the same snapshot.
        let mut other = cell.load();
        assert!(!cell.refresh(&mut other, &catalog, &breaker));
        assert!(Arc::ptr_eq(&cached, &other));

        // Reset: full set again, at a fresh epoch.
        breaker.reset("app");
        assert!(cell.refresh(&mut cached, &catalog, &breaker));
        assert_eq!(cached.epoch, 2);
        assert!(cached.disabled.is_empty());
        assert_eq!(cached.active.len(), catalog.len());
    }
}
