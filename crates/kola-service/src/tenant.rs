//! Named tenant namespaces: per-tenant rule state with enforced isolation.
//!
//! A production optimizer serves many callers whose rule health, quotas,
//! and failure modes must not bleed into each other. This module gives the
//! service N named namespaces, each owning:
//!
//! - its **own sharded [`Breaker`]** — poison traffic from one tenant
//!   trips rules *for that tenant only*, and operator resets are scoped
//!   the same way;
//! - its **own [`SnapshotCell`] generation** — the published rule-set
//!   snapshot each tenant's requests run under, rebuilt only when that
//!   tenant's breaker generation moves;
//! - its **own admission quota** ([`TenantState::quota`]) layered over the
//!   shared per-worker shards — a tenant at quota is shed
//!   [`Outcome::Overloaded`](crate::Outcome::Overloaded) while the others
//!   keep admitting, which is the noisy-neighbor backpressure guarantee
//!   the chaos harness proves ([`crate::chaos::run_noisy_neighbor`]).
//!
//! Workers stay shared: one engine per worker serves every tenant, with
//! per-tenant epochs disambiguated by [`EpochScope`](crate::snapshot::EpochScope)
//! so two tenants at the same raw breaker generation can never alias one
//! memo epoch. The plan cache is shared too, but keys are tenant-salted
//! and entries tenant-tagged (`cache.rs`), so one tenant's trip
//! invalidates only its own plans and a cross-tenant hit is structurally
//! impossible.

use crate::breaker::Breaker;
use crate::snapshot::{EpochScope, RuleSnapshot, SnapshotCell};
use kola_rewrite::Catalog;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// The tenant a request with no explicit label resolves to, and the single
/// namespace of a service configured without tenants.
pub const DEFAULT_TENANT: &str = "default";

/// One tenant namespace's isolated state.
#[derive(Debug)]
pub struct TenantState {
    /// The tenant's name (user-supplied; the observability layer escapes
    /// it wherever it reaches JSON).
    pub name: Arc<str>,
    /// Position in the service's tenant table — the index metric families
    /// and cache keys are salted with.
    pub index: usize,
    /// This tenant's cross-request circuit breaker (sharded per worker,
    /// like the single-tenant breaker was).
    pub breaker: Breaker,
    /// This tenant's published rule-set snapshot cell.
    pub snapshots: SnapshotCell,
    /// Queued-but-unclaimed jobs this tenant currently holds — the
    /// lock-free input to the per-tenant quota decision.
    pub(crate) depth: AtomicUsize,
    /// Admission quota: the most queued jobs this tenant may hold at once.
    pub quota: usize,
}

impl TenantState {
    /// Queued jobs this tenant holds right now (test/observability surface).
    pub fn queued(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }
}

/// The service's tenant table: states in configuration order plus a
/// name → index map for submission-time resolution.
#[derive(Debug)]
pub struct Tenants {
    states: Vec<TenantState>,
    lookup: HashMap<Arc<str>, usize>,
}

impl Tenants {
    /// Build the table. Empty `names` means one [`DEFAULT_TENANT`]
    /// namespace; duplicate names collapse to their first occurrence. Each
    /// tenant gets its own breaker (threshold/worker-sharding identical
    /// across tenants) and a snapshot cell scoped so engine epochs never
    /// collide across namespaces.
    pub fn new(
        names: &[String],
        breaker_threshold: usize,
        worker_shards: usize,
        rule_ids: &[String],
        catalog: &Catalog,
        quota: usize,
    ) -> Tenants {
        let mut resolved: Vec<Arc<str>> = Vec::new();
        let mut lookup: HashMap<Arc<str>, usize> = HashMap::new();
        let defaults = [DEFAULT_TENANT.to_string()];
        let names = if names.is_empty() {
            &defaults[..]
        } else {
            names
        };
        for name in names {
            let name: Arc<str> = Arc::from(name.as_str());
            if !lookup.contains_key(&name) {
                lookup.insert(Arc::clone(&name), resolved.len());
                resolved.push(name);
            }
        }
        let stride = resolved.len() as u64;
        let states = resolved
            .into_iter()
            .enumerate()
            .map(|(index, name)| {
                let breaker = Breaker::sharded(breaker_threshold, worker_shards, rule_ids.to_vec());
                let scope = EpochScope::new(index as u64, stride);
                let snapshots = SnapshotCell::scoped(
                    RuleSnapshot::build_scoped(breaker.generation(), scope, catalog, &breaker),
                    scope,
                );
                TenantState {
                    name,
                    index,
                    breaker,
                    snapshots,
                    depth: AtomicUsize::new(0),
                    quota,
                }
            })
            .collect();
        Tenants { states, lookup }
    }

    /// Resolve a request's tenant label to its table index. `None` is the
    /// first configured tenant; an unknown name is `None` (reject at the
    /// door).
    pub fn resolve(&self, label: Option<&str>) -> Option<usize> {
        match label {
            None => Some(0),
            Some(name) => self.lookup.get(name).copied(),
        }
    }

    /// Tenant state at `index`.
    pub fn get(&self, index: usize) -> &TenantState {
        &self.states[index]
    }

    /// Tenant state by name, if served.
    pub fn by_name(&self, name: &str) -> Option<&TenantState> {
        self.lookup.get(name).map(|&i| &self.states[i])
    }

    /// Number of namespaces.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Always false — a table holds at least one tenant.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The states, in configuration order.
    pub fn iter(&self) -> impl Iterator<Item = &TenantState> {
        self.states.iter()
    }

    /// Tenant names, in configuration order (the label set the per-tenant
    /// metric families are registered with).
    pub fn names(&self) -> Vec<String> {
        self.states.iter().map(|t| t.name.to_string()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(names: &[&str]) -> Tenants {
        let catalog = Catalog::paper();
        let rule_ids: Vec<String> = catalog.rules().iter().map(|r| r.id.clone()).collect();
        let names: Vec<String> = names.iter().map(|s| s.to_string()).collect();
        Tenants::new(&names, 3, 2, &rule_ids, &catalog, 8)
    }

    #[test]
    fn empty_config_serves_the_default_tenant() {
        let t = table(&[]);
        assert_eq!(t.len(), 1);
        assert_eq!(&*t.get(0).name, DEFAULT_TENANT);
        assert_eq!(t.resolve(None), Some(0));
        assert_eq!(t.resolve(Some(DEFAULT_TENANT)), Some(0));
        assert_eq!(t.resolve(Some("nobody")), None);
    }

    #[test]
    fn names_resolve_and_duplicates_collapse() {
        let t = table(&["a", "b", "a"]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.resolve(Some("a")), Some(0));
        assert_eq!(t.resolve(Some("b")), Some(1));
        assert_eq!(
            t.resolve(None),
            Some(0),
            "unlabeled goes to the first tenant"
        );
        assert!(t.by_name("b").is_some());
        assert_eq!(t.names(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn engine_epochs_never_collide_across_tenants() {
        let t = table(&["a", "b"]);
        // Both tenants start at raw generation 0, but their *engine*
        // epochs differ — and keep differing as either generation moves
        // (the scoped epoch is injective over (generation, tenant)).
        let a0 = t.get(0).snapshots.load().engine_epoch;
        let b0 = t.get(1).snapshots.load().engine_epoch;
        assert_ne!(a0, b0);
        // Trip tenant a (threshold is 3); its rebuilt snapshot's engine
        // epoch must collide with neither b's current epoch nor any epoch
        // ever issued to b.
        for i in 0..3 {
            t.get(0).breaker.charge("app", i);
        }
        let catalog = Catalog::paper();
        let mut cached = t.get(0).snapshots.load();
        assert!(t
            .get(0)
            .snapshots
            .refresh(&mut cached, &catalog, &t.get(0).breaker));
        assert_eq!(cached.epoch, 1, "raw epoch is the tenant's own generation");
        assert_ne!(cached.engine_epoch, b0);
        assert_ne!(cached.engine_epoch, a0);
        // Tenant b is untouched: its breaker never saw the charge.
        assert_eq!(t.get(1).breaker.generation(), 0);
        assert!(t.get(1).breaker.open_rules().is_empty());
    }
}
