//! Differential parity: the sharded [`Breaker`] against the original
//! single-lock [`GlobalBreaker`] it replaced.
//!
//! The sharded breaker's contract is that sharding is *invisible*: for any
//! serial charge/reset stream — whatever shard each charge lands on — every
//! observable surface (charge return values, trip counts, open sets,
//! first/last request ids, generation and odometers, `QuarantineReport`s)
//! is byte-identical to the single-lock implementation's. These tests
//! drive seeded random streams through both and compare after every
//! operation, plus targeted cases for the edges that matter: a trip landing
//! exactly at the threshold, and operator resets racing concurrent charges.

use kola_exec::rng::{splitmix64, Rng};
use kola_service::{Breaker, GlobalBreaker};

/// The registered rule universe. "ghost" is deliberately *not* registered
/// with the sharded breaker, so every stream also exercises its
/// locked-fallback path against the same spec.
const REGISTERED: [&str; 5] = ["app", "9", "11", "e121", "comp"];
const ALL_RULES: [&str; 6] = ["app", "9", "11", "e121", "comp", "ghost"];

fn compare_surfaces(sharded: &Breaker, global: &GlobalBreaker, seed: u64, op: usize) {
    let ctx = format!("seed {seed}, after op {op}");
    for rule in ALL_RULES {
        assert_eq!(
            sharded.is_open(rule),
            global.is_open(rule),
            "is_open({rule}) diverged ({ctx})"
        );
        assert_eq!(
            sharded.entry(rule),
            global.entry(rule),
            "entry({rule}) diverged ({ctx})"
        );
    }
    assert_eq!(
        sharded.open_rules(),
        global.open_rules(),
        "open_rules diverged ({ctx})"
    );
    assert_eq!(
        sharded.snapshot(),
        global.snapshot(),
        "snapshot diverged ({ctx})"
    );
    assert_eq!(sharded.report(), global.report(), "report diverged ({ctx})");
    assert_eq!(
        sharded.generation(),
        global.generation(),
        "generation diverged ({ctx})"
    );
    assert_eq!(
        (sharded.opened_total(), sharded.reset_total()),
        (global.opened_total(), global.reset_total()),
        "odometers diverged ({ctx})"
    );
}

/// One seeded serial stream: random charges (single and batched, from
/// random shards), random operator resets, compared op by op.
fn drive_stream(seed: u64, threshold: usize, shards: usize, ops: usize) {
    let sharded = Breaker::sharded(threshold, shards, REGISTERED);
    let global = GlobalBreaker::new(threshold);
    let mut rng = Rng::seed_from_u64(seed);
    for op in 0..ops {
        let request_id = op as u64;
        let roll = rng.gen_range(0..100usize);
        if roll < 70 {
            // Single charge from a random worker shard.
            let rule = ALL_RULES[rng.gen_range(0..ALL_RULES.len())];
            let shard = rng.gen_range(0..shards);
            assert_eq!(
                sharded.charge_from(shard, rule, request_id),
                global.charge(rule, request_id),
                "charge({rule}, {request_id}) via shard {shard} diverged (seed {seed})"
            );
        } else if roll < 85 {
            // Batched charge: the ladder's one-call-per-failed-request
            // entry point, mirrored as individual charges on the spec.
            let shard = rng.gen_range(0..shards);
            let count = 1 + rng.gen_range(0..3usize);
            let start = rng.gen_range(0..ALL_RULES.len());
            let batch: Vec<&str> = (0..count)
                .map(|k| ALL_RULES[(start + k) % ALL_RULES.len()])
                .collect();
            sharded.charge_many(shard, batch.iter().copied(), request_id);
            for rule in &batch {
                global.charge(rule, request_id);
            }
        } else {
            // Operator reset — sometimes of a rule with no state at all.
            let rule = ALL_RULES[rng.gen_range(0..ALL_RULES.len())];
            assert_eq!(
                sharded.reset(rule),
                global.reset(rule),
                "reset({rule}) diverged (seed {seed}, op {op})"
            );
        }
        compare_surfaces(&sharded, &global, seed, op);
    }
}

#[test]
fn seeded_streams_are_byte_identical_across_implementations() {
    let mut master = 0xB12A_4E5Eu64;
    for i in 0..500u64 {
        let seed = splitmix64(&mut master) ^ i;
        let mut rng = Rng::seed_from_u64(seed);
        // Vary the shape too: thresholds small enough to trip often,
        // shard counts from degenerate (1) to more-than-workers.
        let threshold = 1 + rng.gen_range(0..5usize);
        let shards = 1 + rng.gen_range(0..8usize);
        drive_stream(seed, threshold, shards, 60);
    }
}

#[test]
fn trip_lands_exactly_at_threshold() {
    for threshold in [1usize, 2, 3, 7] {
        let sharded = Breaker::sharded(threshold, 4, REGISTERED);
        let global = GlobalBreaker::new(threshold);
        // threshold - 1 charges, spread round-robin across shards: both
        // stay closed with identical accumulating entries.
        for i in 0..threshold - 1 {
            assert!(!sharded.charge_from(i % 4, "app", i as u64));
            assert!(!global.charge("app", i as u64));
            compare_surfaces(&sharded, &global, threshold as u64, i);
        }
        // The threshold-th charge trips both, with trips == threshold
        // exactly (not one more) in the quarantine report.
        let last = (threshold - 1) as u64;
        assert!(sharded.charge_from(threshold % 4, "app", last));
        assert!(global.charge("app", last));
        compare_surfaces(&sharded, &global, threshold as u64, threshold);
        let report = sharded.report();
        assert_eq!(report.entries.len(), 1);
        assert_eq!(report.entries[0].trips, threshold);
        assert_eq!(report.entries[0].first_failure, Some(0));
        assert_eq!(report.entries[0].last_failure, Some(last as usize));
    }
}

#[test]
fn unregistered_ids_survive_concurrent_charge_many_from_every_shard() {
    // The locked-map fallback is the lane for rule ids the breaker never
    // saw at construction (a catalog extended after service start). Batch
    // charges that mix registered slots with two such ghosts, from every
    // worker shard concurrently, and require that the fallback loses
    // nothing: exact trip counts, exactly one opening per rule, and the
    // generation arithmetic intact.
    const THREADS: usize = 8;
    const OPS: u64 = 400;
    const BATCH: [&str; 4] = ["app", "ghost-a", "e121", "ghost-b"];
    let breaker = Breaker::sharded(5, THREADS, REGISTERED);
    std::thread::scope(|scope| {
        for shard in 0..THREADS {
            let breaker = &breaker;
            scope.spawn(move || {
                for op in 0..OPS {
                    breaker.charge_many(shard, BATCH, (shard as u64) << 32 | op);
                }
            });
        }
    });
    let expected = THREADS * OPS as usize;
    for rule in BATCH {
        let e = breaker
            .entry(rule)
            .expect("every charged rule has an entry");
        assert_eq!(e.trips, expected, "{rule}: charges were lost");
        assert!(e.open, "{rule}: threshold 5 was crossed {expected} times");
        assert!(breaker.is_open(rule));
        assert!(e.first_request.is_some() && e.last_request.is_some());
    }
    // Each of the four rules opened exactly once, no reopenings, and every
    // generation bump is accounted for.
    assert_eq!(breaker.opened_total(), BATCH.len() as u64);
    assert_eq!(breaker.reset_total(), 0);
    assert_eq!(
        breaker.generation(),
        breaker.opened_total() + breaker.reset_total()
    );
    // Resetting a ghost goes through the same fallback map and clears it
    // completely — entry gone, not just closed.
    assert!(breaker.reset("ghost-a"));
    assert!(!breaker.is_open("ghost-a"));
    assert!(breaker.entry("ghost-a").is_none());
    assert_eq!(breaker.reset_total(), 1);
    assert_eq!(
        breaker.generation(),
        breaker.opened_total() + breaker.reset_total()
    );
}

#[test]
fn breaker_trip_and_reset_keep_engine_parity_across_index_kinds() {
    // The full trip lifecycle as the service drives it: a faulting rule is
    // quarantined mid-run (the engine prunes it from its rule index *in
    // place* — journaled accept-list removal on the discrimination tree,
    // not a rebuild), the quarantine report charges the breaker, the open
    // set becomes the next snapshot's disabled mask (`set_epoch`), and an
    // operator reset readmits the rule. At every phase, the tree-indexed
    // and head-indexed engines must agree with a naive run over the
    // equivalent filtered pool.
    use kola::term::Query;
    use kola_rewrite::fault::{FaultKind, FaultSpec, StepSelector};
    use kola_rewrite::{Budget, Catalog, Engine, EngineConfig, FaultPlan, Oriented, PropDb};
    use std::sync::Arc;

    let catalog = Catalog::paper();
    let props = PropDb::new();
    let rules: Vec<Oriented> = ["9", "2"]
        .iter()
        .map(|id| Oriented::fwd(catalog.get(id).unwrap()))
        .collect();
    let budget = Budget::with_steps(100).quarantine_after(1);
    let faults = FaultPlan::new().with(FaultSpec {
        rule_id: "9".into(),
        at: StepSelector::Always,
        kind: FaultKind::Fail,
    });
    let f = kola::parse::parse_func("pi1 . (age, city) . id . id . age").unwrap();
    let q = Query::App(f, Box::new(Query::Extent(Arc::from("P"))));

    let breaker = Breaker::sharded(1, 2, ["9", "2"]);
    let mut tree = Engine::new(rules.clone(), &props, EngineConfig::indexed());
    let mut head = Engine::new(rules.clone(), &props, EngineConfig::head_indexed());

    let same = |label: &str, got: &kola_rewrite::Rewritten, want: &kola_rewrite::Rewritten| {
        assert_eq!(got.query, want.query, "[{label}] normal form");
        assert_eq!(got.report.steps, want.report.steps, "[{label}] steps");
        assert_eq!(
            got.report.rule_stats, want.report.rule_stats,
            "[{label}] rule tallies"
        );
        assert_eq!(
            got.trace.justifications(),
            want.trace.justifications(),
            "[{label}] derivation"
        );
    };

    // Phase 1 — trip: the faulting rule is quarantined mid-run and pruned
    // from the live index without a rebuild.
    let naive = kola_rewrite::rewrite_fix_with(&rules, &q, &props, &budget, &faults);
    let got_tree = tree.normalize_with(&q, &budget, &faults);
    let got_head = head.normalize_with(&q, &budget, &faults);
    same("trip/tree", &got_tree, &naive);
    same("trip/head", &got_head, &naive);
    assert_eq!(got_tree.report.quarantined, vec!["9".to_string()]);
    assert!(
        !tree.index_contains("9"),
        "tree still serves the quarantined rule"
    );
    assert!(!head.index_contains("9"));

    // The ladder charges the breaker once per quarantined rule.
    for rule in &got_tree.report.quarantined {
        assert!(breaker.charge_from(0, rule, 1), "threshold 1 must trip");
    }
    assert!(breaker.is_open("9"));

    // Phase 2 — open: the breaker's open set becomes the snapshot's
    // disabled mask. Engines must match a naive run over the filtered
    // pool, and the tree must have *restored* its pruned accepts at the
    // start of the run — masking, not eviction, hides tripped rules across
    // requests.
    let disabled = breaker.open_rules();
    let filtered: Vec<Oriented> = rules
        .iter()
        .filter(|o| !disabled.contains(&o.rule.id))
        .cloned()
        .collect();
    tree.set_epoch(breaker.generation(), &disabled);
    head.set_epoch(breaker.generation(), &disabled);
    let naive =
        kola_rewrite::rewrite_fix_with(&filtered, &q, &props, &budget, &FaultPlan::default());
    same("open/tree", &tree.normalize(&q, &budget), &naive);
    same("open/head", &head.normalize(&q, &budget), &naive);
    assert!(
        tree.index_contains("9"),
        "after a clean run the journaled prune must be restored"
    );

    // Phase 3 — reset: the operator readmits the rule; a fresh epoch with
    // an empty mask serves the full pool again, fault-free.
    assert!(breaker.reset("9"));
    tree.set_epoch(breaker.generation(), &breaker.open_rules());
    head.set_epoch(breaker.generation(), &breaker.open_rules());
    let naive = kola_rewrite::rewrite_fix_with(&rules, &q, &props, &budget, &FaultPlan::default());
    same("reset/tree", &tree.normalize(&q, &budget), &naive);
    same("reset/head", &head.normalize(&q, &budget), &naive);
    assert!(
        naive
            .report
            .rule_stats
            .iter()
            .any(|(id, s)| id == "9" && s.fired > 0),
        "rule 9 must actually fire again after readmission"
    );
}

#[test]
fn operator_resets_race_concurrent_charges_without_losing_coherence() {
    // True races cannot be compared against a serial spec; what must hold
    // on the sharded breaker regardless of interleaving:
    //   - no charge or reset panics or wedges,
    //   - generation == opened_total + reset_total at quiescence (every
    //     served-set transition is exactly one of the two),
    //   - a final reset sweep leaves no open rules and no entries.
    let breaker = Breaker::sharded(3, 4, REGISTERED);
    std::thread::scope(|scope| {
        for worker in 0..4usize {
            let breaker = &breaker;
            scope.spawn(move || {
                let mut rng = Rng::seed_from_u64(0xDEAD ^ worker as u64);
                for op in 0..2_000u64 {
                    let rule = REGISTERED[rng.gen_range(0..REGISTERED.len())];
                    breaker.charge_from(worker, rule, (worker as u64) << 32 | op);
                }
            });
        }
        // The operator: reset whatever looks open, while charges fly.
        let breaker = &breaker;
        scope.spawn(move || {
            for _ in 0..200 {
                for rule in breaker.open_rules() {
                    breaker.reset(&rule);
                }
                std::thread::yield_now();
            }
        });
    });
    assert_eq!(
        breaker.generation(),
        breaker.opened_total() + breaker.reset_total(),
        "every generation bump must be exactly one opening or one readmission"
    );
    for rule in REGISTERED {
        breaker.reset(rule);
    }
    assert!(breaker.open_rules().is_empty());
    assert!(breaker.snapshot().is_empty());
    assert_eq!(
        breaker.generation(),
        breaker.opened_total() + breaker.reset_total()
    );
}
