//! The plan cache's external contract, proven through the public service
//! surface:
//!
//! 1. **Transparency** (`cache_on_is_byte_identical_to_cache_off`): across
//!    500 seeded request streams — repeated pool queries in both text and
//!    AST form, unique queries, injected rule faults that trip breakers
//!    mid-stream, forced rung failures, and operator reset sweeps — a
//!    cache-enabled service answers byte-identically to a cache-disabled
//!    one, response by response. The cache may change *where* an answer
//!    comes from, never *what* it is.
//! 2. **Single-flight** (`identical_concurrent_misses_coalesce_onto_one_leader`):
//!    N concurrent identical misses cost one engine pass; the other N−1
//!    park on the leader and are served its answer.
//! 3. **Invalidation** (`breaker_trip_invalidates_resident_plans`): a
//!    breaker trip makes every resident plan stale; the next identical
//!    request recomputes under the new rule set and re-caches.
//!
//! The cache's internal mechanics (CLOCK eviction, key aliasing, epoch
//! reclaim) are unit-tested in `src/cache.rs`.

use kola::parse::parse_query;
use kola_exec::rng::{splitmix64, Rng};
use kola_rewrite::{FaultKind, FaultPlan, FaultSpec, StepSelector};
use kola_service::{Outcome, Request, RequestOptions, Response, Rung, Service, ServiceConfig};
use std::sync::Arc;
use std::time::Duration;

fn id_tower_text(height: usize) -> String {
    let mut s = String::new();
    for _ in 0..height {
        s.push_str("id . ");
    }
    s.push_str("age ! P");
    s
}

/// Everything a client can observe about a response except the id (the
/// two services number independently-submitted streams identically, but
/// keep the comparison honest) and the latency (wall-clock, not semantic).
fn fingerprint(r: &Response) -> String {
    format!(
        "{:?} | {:?} | {:?} | {:?} | retries={} | panics={} | {:?}",
        r.outcome,
        r.plan,
        r.report,
        r.quarantine,
        r.retries,
        r.panics.len(),
        r.error
    )
}

/// One deterministic parity request. No wall-clock options (timeouts and
/// deadlines make outcomes timing-dependent with or without a cache);
/// backoffs are microscopic so fault lanes don't stall the suite.
fn gen_parity_request(rng: &mut Rng, op: usize, ast_pool: &[Arc<kola::term::Query>]) -> Request {
    let tiny_backoff = RequestOptions {
        backoff: Duration::from_micros(10),
        ..RequestOptions::default()
    };
    let roll = rng.gen_range(0..100usize);
    if roll < 45 {
        // Repeated text pool: the cache's bread and butter.
        Request::text(id_tower_text(2 + rng.gen_range(0..6usize)))
    } else if roll < 60 {
        // Repeated AST pool: the no-parse submission path, same cache.
        Request::ast(Arc::clone(&ast_pool[rng.gen_range(0..ast_pool.len())]))
    } else if roll < 75 {
        // Unique query: always a miss, fills and churns the cache.
        Request::text(format!("gt ? [{}, 2]", op + 3))
    } else if roll < 90 {
        // Deterministic rule fault: uncacheable by design, charges the
        // breaker — this is what trips rules (and flips the cache
        // generation) mid-stream.
        Request::text(id_tower_text(2 + rng.gen_range(0..4usize))).with_options(RequestOptions {
            faults: FaultPlan::new().with(FaultSpec {
                rule_id: if rng.gen_bool(0.5) { "app" } else { "e121" }.to_string(),
                at: StepSelector::Steps(vec![rng.gen_range(0..2usize)]),
                kind: FaultKind::Fail,
            }),
            ..tiny_backoff
        })
    } else {
        // Forced fast-rung failure: uncacheable, answered by the
        // reference rung on both services.
        Request::text(id_tower_text(1 + rng.gen_range(0..4usize))).with_options(RequestOptions {
            force_fail: vec![Rung::Fast],
            ..tiny_backoff
        })
    }
}

fn parity_service(cache_capacity: usize) -> Service {
    Service::start(ServiceConfig {
        workers: 1,
        cache_capacity,
        // Low enough that the fault lane trips rules inside a 30-request
        // stream — every trip is a snapshot swap the cache must survive.
        breaker_threshold: 3,
        ..ServiceConfig::default()
    })
}

#[test]
fn cache_on_is_byte_identical_to_cache_off() {
    let seeds: u64 = std::env::var("CACHE_PARITY_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(500);
    const OPS: usize = 30;
    let ast_pool: Vec<Arc<kola::term::Query>> = (2..5)
        .map(|h| Arc::new(parse_query(&id_tower_text(h)).expect("pool parses")))
        .collect();
    let (mut total_hits, mut total_stale) = (0u64, 0u64);
    let mut master = 0xCAC4E_u64;
    for i in 0..seeds {
        let seed = splitmix64(&mut master) ^ i;
        let cached = parity_service(2_048);
        let uncached = parity_service(0);
        let mut rng = Rng::seed_from_u64(seed);
        for op in 0..OPS {
            let request = gen_parity_request(&mut rng, op, &ast_pool);
            let a = cached.call(request.clone());
            let b = uncached.call(request);
            assert_eq!(
                fingerprint(&a),
                fingerprint(&b),
                "seed {seed:#x} op {op}: cache-on diverged from cache-off"
            );
            // Periodic operator reset sweep — identical on both sides
            // because the charge streams are identical (cache hits only
            // happen for requests that charge nothing). Every reset of an
            // open rule is another generation bump mid-stream.
            if op % 11 == 10 {
                let open = cached.breaker().open_rules();
                assert_eq!(
                    open,
                    uncached.breaker().open_rules(),
                    "seed {seed:#x} op {op}"
                );
                for rule in open {
                    cached.breaker().reset(&rule);
                    uncached.breaker().reset(&rule);
                }
            }
        }
        let s = cached.metrics_snapshot();
        total_hits += s.counter("cache_hits");
        total_stale += s.counter("cache_stale");
        assert_eq!(
            uncached.metrics_snapshot().counter("cache_hits"),
            0,
            "a zero-capacity cache must never hit"
        );
    }
    // The suite exercised what it claims to: plenty of hits, and stale
    // reclaims prove invalidation ran while plans were resident.
    assert!(total_hits > 0, "parity streams never hit the cache");
    assert!(
        total_stale > 0,
        "parity streams never reclaimed a stale plan (no trip landed while a plan was resident)"
    );
}

#[test]
fn identical_concurrent_misses_coalesce_onto_one_leader() {
    let service = Service::start(ServiceConfig {
        workers: 1,
        queue_capacity: 32,
        ..ServiceConfig::default()
    });
    // The leader holds its worker long enough for the followers to submit
    // while the flight is open. `hold_for` is pacing, not key material —
    // the followers carry default options and still share the key.
    let src = id_tower_text(5);
    let leader = service
        .submit(Request::text(src.clone()).with_options(RequestOptions {
            hold_for: Some(Duration::from_millis(300)),
            ..RequestOptions::default()
        }))
        .expect("leader admitted");
    let followers: Vec<_> = (0..5)
        .map(|_| {
            service
                .submit(Request::text(src.clone()))
                .expect("follower accepted")
        })
        .collect();
    let lead_response = leader.wait();
    let follower_responses: Vec<Response> = followers.into_iter().map(|p| p.wait()).collect();

    assert_eq!(
        lead_response.outcome,
        Outcome::Optimized { rung: Rung::Fast }
    );
    for f in &follower_responses {
        assert_eq!(f.outcome, lead_response.outcome);
        assert_eq!(f.plan, lead_response.plan, "waiters get the leader's plan");
        assert_eq!(f.report, lead_response.report);
    }
    let s = service.metrics_snapshot();
    assert_eq!(
        s.counter("cache_coalesced"),
        5,
        "five waiters parked on the flight"
    );
    assert_eq!(s.counter("admitted"), 1, "one engine pass for six requests");
    assert_eq!(
        s.counter("cache_hits"),
        5,
        "coalesced waiters count as hits"
    );

    // The flight retired into a resident entry: the next identical
    // request is a direct hit, still with no admission.
    let again = service.call(Request::text(src));
    assert_eq!(again.outcome, lead_response.outcome);
    assert_eq!(again.plan, lead_response.plan);
    let s = service.metrics_snapshot();
    assert_eq!(s.counter("admitted"), 1);
    assert_eq!(s.counter("cache_hits"), 6);
    assert_eq!(
        s.counter("cache_hits"),
        s.family("cache_served")
            .iter()
            .map(|(_, n)| *n)
            .sum::<u64>(),
        "every hit was served"
    );
}

#[test]
fn breaker_trip_invalidates_resident_plans() {
    let service = Service::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let src = id_tower_text(6);

    let first = service.call(Request::text(src.clone()));
    assert_eq!(first.outcome, Outcome::Optimized { rung: Rung::Fast });
    let second = service.call(Request::text(src.clone()));
    assert_eq!(fmt_plan(&second), fmt_plan(&first));
    let s = service.metrics_snapshot();
    assert_eq!(s.counter("cache_insertions"), 1);
    assert_eq!(s.counter("cache_hits"), 1);

    // Operator-visible trip: open a rule directly. Generation moves, so
    // the resident plan — computed under the old rule set — is dead.
    for i in 0..10 {
        service.breaker().charge("11", 1_000 + i);
    }
    assert!(service.breaker().is_open("11"));

    let third = service.call(Request::text(src.clone()));
    assert_eq!(
        third.outcome,
        Outcome::Optimized { rung: Rung::Fast },
        "recompute under the reduced rule set still answers"
    );
    let s = service.metrics_snapshot();
    assert_eq!(s.counter("cache_hits"), 1, "the stale entry must not serve");
    assert_eq!(
        s.counter("cache_stale"),
        1,
        "the stale entry was reclaimed on sight"
    );
    assert_eq!(s.counter("cache_insertions"), 2, "the recompute re-cached");

    // And the re-cached plan serves under the new generation.
    let fourth = service.call(Request::text(src));
    assert_eq!(fmt_plan(&fourth), fmt_plan(&third));
    assert_eq!(service.metrics_snapshot().counter("cache_hits"), 2);

    // Reset moves the generation again: resident plans die once more.
    service.breaker().reset("11");
    let fifth = service.call(Request::text(id_tower_text(6)));
    assert_eq!(fifth.outcome, Outcome::Optimized { rung: Rung::Fast });
    assert_eq!(fmt_plan(&fifth), fmt_plan(&first), "full rule set is back");
    let s = service.metrics_snapshot();
    assert_eq!(s.counter("cache_stale"), 2);
}

/// Satellite of the single-flight fix: a leader whose pass turns out
/// unserveable (here: its deadline expires mid-hold, so the ladder
/// degrades to Passthrough) must hand its parked waiters back to the
/// queue as solo passes — never answer them with the failed reply, never
/// leave them parked until their own deadlines.
#[test]
fn failed_leader_requeues_waiters_as_solo_passes() {
    let service = Service::start(ServiceConfig {
        workers: 1,
        queue_capacity: 32,
        ..ServiceConfig::default()
    });
    let src = id_tower_text(5);
    // The leader holds its worker past its own deadline: the ladder runs
    // with the budget already exhausted and degrades to Passthrough —
    // which is not cacheable, so the flight retires empty-handed.
    let leader = service
        .submit(Request::text(src.clone()).with_options(RequestOptions {
            hold_for: Some(Duration::from_millis(300)),
            timeout: Some(Duration::from_millis(50)),
            ..RequestOptions::default()
        }))
        .expect("leader admitted");
    let followers: Vec<_> = (0..5)
        .map(|_| {
            service
                .submit(Request::text(src.clone()))
                .expect("follower accepted")
        })
        .collect();
    let lead_response = leader.wait();
    assert_eq!(
        lead_response.outcome,
        Outcome::Passthrough,
        "the leader's expired deadline must degrade it"
    );
    // Every waiter fell through to its own engine pass and optimized.
    for f in followers {
        let r = f.wait();
        assert_eq!(
            r.outcome,
            Outcome::Optimized { rung: Rung::Fast },
            "requeued waiter must answer from its own pass"
        );
    }
    let s = service.metrics_snapshot();
    assert_eq!(s.counter("cache_hits"), 0, "nothing was served from cache");
    assert_eq!(
        s.counter("cache_coalesced"),
        0,
        "no waiter was answered by the leader"
    );
    assert_eq!(
        s.counter("cache_insertions"),
        0,
        "a Passthrough never caches"
    );
    assert_eq!(
        s.counter("admitted"),
        6,
        "leader + five requeued waiters each took a queue slot"
    );
    assert_eq!(
        kola_service::conservation_violations(&s),
        Vec::<String>::new(),
        "requeue keeps the books balanced"
    );
}

/// Satellite of the tenant split: one tenant's breaker trip moves only
/// its own cache generation. The other tenant's resident plans keep
/// serving; the tripped tenant recomputes under its reduced rule set.
#[test]
fn tenant_trip_leaves_other_tenants_plans_resident() {
    let service = Service::start(ServiceConfig {
        workers: 1,
        tenants: vec!["a".to_string(), "b".to_string()],
        ..ServiceConfig::default()
    });
    let src = id_tower_text(6);
    // Warm one line per tenant — same query text, tenant-salted keys.
    let a1 = service.call(Request::text(src.clone()).for_tenant("a"));
    let b1 = service.call(Request::text(src.clone()).for_tenant("b"));
    assert_eq!(a1.outcome, Outcome::Optimized { rung: Rung::Fast });
    assert_eq!(b1.outcome, Outcome::Optimized { rung: Rung::Fast });
    let s = service.metrics_snapshot();
    assert_eq!(s.counter("cache_insertions"), 2, "one line per tenant");
    assert_eq!(s.counter("cache_hits"), 0);

    // Operator-visible trip on tenant "a" only.
    let a_breaker = service.tenant_breaker("a").expect("tenant a exists");
    for i in 0..10 {
        a_breaker.charge("11", 2_000 + i);
    }
    assert!(a_breaker.is_open("11"));
    assert_eq!(
        service
            .tenant_breaker("b")
            .expect("tenant b exists")
            .generation(),
        0,
        "b's generation must not move on a's trip"
    );

    // b's repeats keep hitting — ten straight, zero recomputes.
    for _ in 0..10 {
        let b = service.call(Request::text(src.clone()).for_tenant("b"));
        assert_eq!(fmt_plan(&b), fmt_plan(&b1), "b serves its resident plan");
    }
    let s = service.metrics_snapshot();
    assert_eq!(s.counter("cache_hits"), 10, "every b repeat was a hit");
    assert_eq!(s.counter("cache_stale"), 0, "no line went stale yet");

    // a recomputes under its reduced rule set and re-caches.
    let a2 = service.call(Request::text(src.clone()).for_tenant("a"));
    assert_eq!(
        a2.outcome,
        Outcome::Optimized { rung: Rung::Fast },
        "a still answers under the reduced rule set"
    );
    let s = service.metrics_snapshot();
    assert_eq!(s.counter("cache_stale"), 1, "a's stale line was reclaimed");
    assert_eq!(s.counter("cache_insertions"), 3, "a's recompute re-cached");
    // The hit books are tenant-labelled: all ten hits were b's (plus a's
    // re-cached line serving its next repeat).
    let a3 = service.call(Request::text(src).for_tenant("a"));
    assert_eq!(fmt_plan(&a3), fmt_plan(&a2));
    let s = service.metrics_snapshot();
    let lane = |label: &str| {
        s.family("tenant_cache_hits")
            .iter()
            .find(|(l, _)| l == label)
            .map_or(0, |(_, n)| *n)
    };
    assert_eq!(lane("b"), 10);
    assert_eq!(lane("a"), 1);
    assert_eq!(
        kola_service::conservation_violations(&s),
        Vec::<String>::new()
    );
}

fn fmt_plan(r: &Response) -> String {
    format!("{:?}", r.plan)
}
