//! The chaos soak as a test: 10,000 seeded requests (override with
//! `CHAOS_REQUESTS`) mixing well-formed queries, adversarially deep terms,
//! poison rules, and random deadlines. Asserts the service's terminal
//! invariants: every request classified, zero escaped panics, zero
//! semantic-gate failures — and that the stream actually exercised every
//! lane (panics caught, breakers opened, loads shed).

use kola_service::{run_chaos, ChaosConfig};

#[test]
fn chaos_soak_classifies_every_request_and_escapes_no_panics() {
    let requests = std::env::var("CHAOS_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    let cfg = ChaosConfig {
        requests,
        ..ChaosConfig::default()
    };
    let report = run_chaos(&cfg);
    let violations = report.violations();
    assert!(
        violations.is_empty(),
        "soak invariants violated:\n{}\n\n{}",
        violations.join("\n"),
        report.summary()
    );
    // The taxonomy is exactly Optimized{rung} / Passthrough / Overloaded.
    assert_eq!(
        report.optimized_fast + report.optimized_reference + report.passthrough + report.overloaded,
        report.requests,
        "{}",
        report.summary()
    );
    assert_eq!(report.invalid, 0, "{}", report.summary());
    assert_eq!(report.unexpected_panics, 0, "{}", report.summary());
    assert_eq!(report.gate_failures, 0, "{}", report.summary());
    if requests >= 2_000 {
        // With the default stream the chaos lanes all fire: poison rules
        // panic and are caught, their breakers open, flood phases shed.
        assert!(report.caught_panics > 0, "{}", report.summary());
        assert!(report.breaker_opened > 0, "{}", report.summary());
        assert!(report.overloaded > 0, "{}", report.summary());
        assert!(report.optimized_fast > 0, "{}", report.summary());
        assert!(report.passthrough > 0, "{}", report.summary());
        assert!(report.retries > 0, "{}", report.summary());
    }
    // Persistent engines really ran (the arena saw terms) and stayed
    // bounded (the bound itself is enforced by `violations()` above).
    assert!(report.peak_arena_nodes > 0, "{}", report.summary());
}
