//! The chaos soak as a test: 10,000 seeded requests (override with
//! `CHAOS_REQUESTS`) mixing well-formed queries, adversarially deep terms,
//! poison rules, and random deadlines. Asserts the service's terminal
//! invariants: every request classified, zero escaped panics, zero
//! semantic-gate failures — and that the stream actually exercised every
//! lane (panics caught, breakers opened, loads shed). Runs with tracing
//! on, so it also asserts the observability invariants: the metric books
//! balance (conservation), and every trace left in the ring replays
//! byte-for-byte on the boxed reference engine.

use kola_service::{conservation_violations, run_chaos, ChaosConfig};

#[test]
fn chaos_soak_classifies_every_request_and_escapes_no_panics() {
    let requests = std::env::var("CHAOS_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    let cfg = ChaosConfig {
        requests,
        tracing: true,
        trace_capacity: 256,
        ..ChaosConfig::default()
    };
    let report = run_chaos(&cfg);
    let violations = report.violations();
    assert!(
        violations.is_empty(),
        "soak invariants violated:\n{}\n\n{}",
        violations.join("\n"),
        report.summary()
    );
    // The taxonomy is exactly Optimized{rung} / Passthrough / Overloaded.
    assert_eq!(
        report.optimized_fast + report.optimized_reference + report.passthrough + report.overloaded,
        report.requests,
        "{}",
        report.summary()
    );
    assert_eq!(report.invalid, 0, "{}", report.summary());
    assert_eq!(report.unexpected_panics, 0, "{}", report.summary());
    assert_eq!(report.gate_failures, 0, "{}", report.summary());
    if requests >= 2_000 {
        // With the default stream the chaos lanes all fire: poison rules
        // panic and are caught, their breakers open, flood phases shed.
        assert!(report.caught_panics > 0, "{}", report.summary());
        assert!(report.breaker_opened > 0, "{}", report.summary());
        assert!(report.overloaded > 0, "{}", report.summary());
        assert!(report.optimized_fast > 0, "{}", report.summary());
        assert!(report.passthrough > 0, "{}", report.summary());
        assert!(report.retries > 0, "{}", report.summary());
        // The repeated lane hit the plan cache, and the poison lanes'
        // breaker trips invalidated resident entries mid-soak — the
        // stale-reclaim odometer is the proof invalidation was exercised
        // (zero *escaped* stale plans is enforced by the taxonomy
        // cross-checks in `violations()`).
        assert!(report.cache_hits > 0, "{}", report.summary());
        assert!(report.cache_misses > 0, "{}", report.summary());
        assert!(report.cache_stale > 0, "{}", report.summary());
    }
    // Persistent engines really ran (the arena saw terms) and stayed
    // bounded (the bound itself is enforced by `violations()` above).
    assert!(report.peak_arena_nodes > 0, "{}", report.summary());

    // Conservation: over the whole soak the metric books balance —
    // submitted == overloaded + rejected_invalid + admitted, and every
    // admitted request bumped exactly one completion counter.
    assert_eq!(
        conservation_violations(&report.metrics),
        Vec::<String>::new(),
        "{}",
        report.summary()
    );
    let s = &report.metrics;
    assert_eq!(s.counter("submitted"), report.requests as u64);
    assert_eq!(s.counter("overloaded"), report.overloaded as u64);
    // Fast completions split between worker passes and cache serves; the
    // sum must equal what clients tallied (also enforced per-outcome by
    // `violations()` above).
    let served_fast = s
        .family("cache_served")
        .iter()
        .find(|(l, _)| l == "fast")
        .map_or(0, |(_, n)| *n);
    assert_eq!(
        s.counter("optimized_fast") + served_fast,
        report.optimized_fast as u64
    );
    // A coalesced waiter's reply carries its leader's retry count, so the
    // client-side tally can exceed the per-computation counter — never
    // undershoot it.
    assert!(report.retries as u64 >= s.counter("retries"));
    assert_eq!(s.counter("caught_panics"), report.caught_panics as u64);
    // The cache books tie out: hits all came from somewhere.
    assert_eq!(
        s.counter("cache_hits"),
        s.family("cache_served")
            .iter()
            .map(|(_, n)| *n)
            .sum::<u64>()
    );
    // The fault lanes made the fast rung fail at least once, and the
    // engine lanes attributed real work to the per-rule families.
    assert!(s.family("rung_failures").iter().any(|(l, _)| l == "fast"));
    assert!(s.counter("engine_visits") > 0, "{}", report.summary());
    let fired: u64 = s.family("rules_fired").iter().map(|(_, n)| *n).sum();
    let attempted: u64 = s.family("rules_attempted").iter().map(|(_, n)| *n).sum();
    assert!(fired > 0 && attempted > 0, "{}", report.summary());
    // The interner's own high-water mark dominates the after-request
    // samples the service takes.
    assert!(s.gauge("arena_peak") >= report.peak_arena_nodes as u64);
    // The discrimination-tree shape gauges were populated from the worker
    // engines' index: a 500+-rule catalog makes a tree with thousands of
    // nodes, real depth, and at least one metavariable edge.
    assert!(s.gauge("index_tree_nodes") > 500, "{}", report.summary());
    assert!(s.gauge("index_tree_max_depth") >= 4);
    assert!(s.gauge("index_tree_edges") >= s.gauge("index_tree_wildcard_edges"));
    assert!(s.gauge("index_tree_wildcard_edges") > 0);
    assert!(s.gauge("index_tree_mean_fanout_milli") >= 1000);

    // Trace replay: traces were recorded and every one still in the ring
    // re-executed byte-for-byte on the reference engine (enforced by
    // `violations()` above; assert the lane actually fired).
    assert!(report.traces_recorded > 0, "{}", report.summary());
    assert!(report.traces_replayed > 0, "{}", report.summary());
    assert_eq!(report.traces_divergent, 0, "{}", report.summary());
}
