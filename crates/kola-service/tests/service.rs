//! Integration tests for the optimization service: degradation parity,
//! structured overload, breaker trip/recovery, deadline expiry between
//! rungs, and request classification.

use kola::term::{Func, Query};
use kola_rewrite::strategy;
use kola_rewrite::{
    Budget, Catalog, EngineConfig, FaultKind, FaultPlan, FaultSpec, PropDb, Runner, StepSelector,
    Trace,
};
use kola_service::{
    Breaker, Ladder, Outcome, Payload, Request, RequestOptions, Rung, Service, ServiceConfig,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tower(height: usize, leaf: &str) -> Query {
    let mut f = Func::Prim(Arc::from(leaf));
    for _ in 0..height {
        f = Func::Compose(Box::new(Func::Id), Box::new(f));
    }
    Query::App(f, Box::new(Query::Extent(Arc::from("P"))))
}

/// A deterministic 500-query corpus exercising towers, iterates, unions,
/// and tests. Pure function of the seed.
fn corpus_query(seed: u64) -> Query {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move |m: u64| {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s % m
    };
    let leaf = ["age", "city", "addr"][next(3) as usize];
    match next(4) {
        0 => tower(next(10) as usize, leaf),
        1 => kola::parse::parse_query(&format!("iterate(Kp(T), {leaf}) ! P")).unwrap(),
        2 => kola::parse::parse_query("P union Q").unwrap(),
        _ => {
            let inner = tower(next(6) as usize, leaf);
            Query::PairQ(Box::new(inner), Box::new(Query::Extent(Arc::from("Q"))))
        }
    }
}

/// The direct (non-service) run the parity criterion compares against.
fn direct_run(
    catalog: &Catalog,
    props: &PropDb,
    engine: Option<EngineConfig>,
    q: Query,
) -> (Query, kola_rewrite::RewriteReport) {
    let ids = catalog.forward_ids();
    let refs: Vec<&str> = ids.iter().map(String::as_str).collect();
    let mut runner = Runner::new(catalog, props).with_budget(Budget::default());
    if let Some(cfg) = engine {
        runner = runner.with_engine(cfg);
    }
    let mut trace = Trace::new();
    let (out, _outcome, report) = runner.run_governed(&strategy::fix(&refs), q, &mut trace);
    (out, report)
}

#[test]
fn service_output_is_byte_identical_to_direct_fast_engine_run() {
    let service = Service::start(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });
    let catalog = Catalog::paper();
    let props = PropDb::new();
    for seed in 0..500u64 {
        let q = corpus_query(seed);
        let response = service.call(Request::ast(q.clone()));
        let (direct_q, direct_report) = direct_run(&catalog, &props, Some(EngineConfig::fast()), q);
        assert_eq!(
            response.outcome,
            Outcome::Optimized { rung: Rung::Fast },
            "seed {seed}"
        );
        assert_eq!(response.plan.as_deref(), Some(&direct_q), "seed {seed}");
        let report = response.report.expect("fast rung report");
        assert_eq!(report, direct_report, "seed {seed}");
        // Byte-identity, literally: the rendered plans and reports match.
        assert_eq!(
            format!("{}", response.plan.unwrap()),
            format!("{direct_q}"),
            "seed {seed}"
        );
        assert_eq!(
            format!("{report:?}"),
            format!("{direct_report:?}"),
            "seed {seed}"
        );
        assert!(response.panics.is_empty(), "seed {seed}");
        assert_eq!(response.retries, 0, "seed {seed}");
    }
}

#[test]
fn forced_fast_failure_is_byte_identical_to_reference_engine_run() {
    let service = Service::start(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });
    let catalog = Catalog::paper();
    let props = PropDb::new();
    let options = RequestOptions {
        force_fail: vec![Rung::Fast],
        backoff: Duration::from_micros(10),
        ..RequestOptions::default()
    };
    for seed in 0..500u64 {
        let q = corpus_query(seed);
        let response = service.call(Request::ast(q.clone()).with_options(options.clone()));
        let (direct_q, direct_report) = direct_run(&catalog, &props, None, q);
        assert_eq!(
            response.outcome,
            Outcome::Optimized {
                rung: Rung::Reference
            },
            "seed {seed}"
        );
        assert_eq!(response.plan.as_deref(), Some(&direct_q), "seed {seed}");
        assert_eq!(
            response.report.expect("reference rung report"),
            direct_report,
            "seed {seed}"
        );
    }
}

#[test]
fn full_queue_sheds_with_structured_overloaded() {
    let service = Service::start(ServiceConfig {
        workers: 1,
        queue_capacity: 2,
        // This test floods the queue with *identical* requests; with the
        // plan cache on they would coalesce onto the held leader instead
        // of occupying queue slots, and nothing would shed.
        cache_capacity: 0,
        ..ServiceConfig::default()
    });
    let slow = Request::text("id . age ! P").with_options(RequestOptions {
        hold_for: Some(Duration::from_millis(300)),
        ..RequestOptions::default()
    });
    let first = service.submit(slow).expect("first request admitted");
    // Let the worker pick the slow job up so the queue itself is empty.
    std::thread::sleep(Duration::from_millis(50));
    let mut admitted = vec![first];
    let mut sheds = Vec::new();
    for _ in 0..3 {
        match service.submit(Request::text("id . age ! P")) {
            Ok(p) => admitted.push(p),
            Err(r) => sheds.push(r),
        }
    }
    assert!(
        !sheds.is_empty(),
        "submitting capacity+1 requests against a held worker must shed"
    );
    for shed in &sheds {
        assert_eq!(shed.outcome, Outcome::Overloaded);
        assert!(shed.error.as_deref().unwrap().contains("queue full"));
        assert!(shed.plan.is_none());
    }
    // Every admitted request still terminates classified.
    for p in admitted {
        let r = p.wait();
        assert_eq!(r.outcome, Outcome::Optimized { rung: Rung::Fast });
    }
}

#[test]
fn breaker_trips_on_poison_rule_and_recovers_on_reset() {
    let service = Service::start(ServiceConfig {
        workers: 1,
        breaker_threshold: 2,
        ..ServiceConfig::default()
    });
    let poison = RequestOptions {
        faults: FaultPlan::new().with(FaultSpec {
            rule_id: "app".to_string(),
            at: StepSelector::Always,
            kind: FaultKind::Panic,
        }),
        backoff: Duration::from_micros(10),
        ..RequestOptions::default()
    };
    // Two poisoned requests: each has every rung panic in rule "app",
    // degrades to passthrough, and charges the breaker once.
    for i in 0..2 {
        let r = service.call(Request::text("id . id . age ! P").with_options(poison.clone()));
        assert_eq!(r.outcome, Outcome::Passthrough, "request {i}");
        assert!(!r.panics.is_empty(), "request {i}");
        assert!(
            r.panics.iter().all(|p| p.rule_id.as_deref() == Some("app")),
            "request {i}: panics attributed to the poisoned rule"
        );
    }
    assert_eq!(service.breaker().open_rules(), vec!["app".to_string()]);
    let trips = service.breaker().report();
    assert_eq!(trips.entries.len(), 1);
    assert_eq!(trips.entries[0].rule_id, "app");
    assert_eq!(trips.entries[0].trips, 2);

    // Same poisoned request again: "app" is evicted from the rule set (and
    // the fast engine's index), so the fault never fires and the request
    // optimizes on the fast rung.
    let r = service.call(Request::text("id . id . age ! P").with_options(poison.clone()));
    assert_eq!(r.outcome, Outcome::Optimized { rung: Rung::Fast });
    assert!(r.panics.is_empty());
    let report = r.report.expect("report");
    assert!(
        !report.rule_stats.contains_key("app"),
        "evicted rule must not even be attempted"
    );

    // Operator reset readmits the rule; a clean request uses it again.
    assert!(service.breaker().reset("app"));
    assert!(service.breaker().open_rules().is_empty());
    let r = service.call(Request::text("id . id . age ! P"));
    assert_eq!(r.outcome, Outcome::Optimized { rung: Rung::Fast });
    let report = r.report.expect("report");
    assert!(
        report.rule_stats.get("app").is_some_and(|s| s.fired > 0),
        "readmitted rule fires again"
    );
}

/// Cross-request memo correctness: a worker's persistent engine memoizes
/// normalizations under snapshot epoch N; after a breaker trip (and again
/// after a reset) swaps in epoch N+1, the same query must be re-derived
/// under the *new* rule set — byte-identical to a fresh engine over that
/// set — not replayed from the stale memo.
#[test]
fn persistent_engine_memo_does_not_leak_across_snapshot_swaps() {
    let service = Service::start(ServiceConfig {
        workers: 1,
        breaker_threshold: 2,
        ..ServiceConfig::default()
    });
    let catalog = Catalog::paper();
    let props = PropDb::new();
    let q = kola::parse::parse_query("id . id . age ! P").unwrap();

    // Epoch 0: the clean request runs (and memoizes) under the full set.
    let direct_run_for = |ids: Vec<String>| {
        let refs: Vec<&str> = ids.iter().map(String::as_str).collect();
        let runner = Runner::new(&catalog, &props)
            .with_budget(Budget::default())
            .with_engine(EngineConfig::fast());
        let mut trace = Trace::new();
        let (out, _o, report) = runner.run_governed(&strategy::fix(&refs), q.clone(), &mut trace);
        (out, report)
    };
    let r = service.call(Request::ast(q.clone()));
    assert_eq!(r.outcome, Outcome::Optimized { rung: Rung::Fast });
    let (full_q, full_report) = direct_run_for(catalog.forward_ids());
    assert_eq!(r.plan.as_deref(), Some(&full_q));
    assert_eq!(r.report.as_ref(), Some(&full_report));
    // Run it again: this answer may come from the memo — it must still be
    // byte-identical (memo replays are exact).
    let r = service.call(Request::ast(q.clone()));
    assert_eq!(r.plan.as_deref(), Some(&full_q));
    assert_eq!(r.report.as_ref(), Some(&full_report));

    // Trip "app": two poisoned requests open its breaker → epoch 1.
    let poison = RequestOptions {
        faults: FaultPlan::new().with(FaultSpec {
            rule_id: "app".to_string(),
            at: StepSelector::Always,
            kind: FaultKind::Panic,
        }),
        backoff: Duration::from_micros(10),
        ..RequestOptions::default()
    };
    for _ in 0..2 {
        service.call(Request::ast(q.clone()).with_options(poison.clone()));
    }
    assert_eq!(service.breaker().open_rules(), vec!["app".to_string()]);

    // The same query under epoch 1 must match a fresh engine over the
    // reduced set — if the epoch-0 memo leaked, "app" would appear in
    // rule_stats (its derivations fired it) and the report would differ.
    let r = service.call(Request::ast(q.clone()));
    assert_eq!(r.outcome, Outcome::Optimized { rung: Rung::Fast });
    let reduced: Vec<String> = catalog
        .forward_ids()
        .into_iter()
        .filter(|id| id != "app")
        .collect();
    let (reduced_q, reduced_report) = direct_run_for(reduced);
    assert_eq!(r.plan.as_deref(), Some(&reduced_q));
    assert_eq!(r.report.as_ref(), Some(&reduced_report));
    assert!(
        !r.report.unwrap().rule_stats.contains_key("app"),
        "stale epoch-0 memo (derived with \"app\") must not be replayed"
    );

    // Reset: epoch 2 restores the full set; the epoch-1 memo must not be
    // replayed either — "app" fires again and the answer matches epoch 0's.
    assert!(service.breaker().reset("app"));
    let r = service.call(Request::ast(q.clone()));
    assert_eq!(r.outcome, Outcome::Optimized { rung: Rung::Fast });
    assert_eq!(r.plan.as_deref(), Some(&full_q));
    assert_eq!(r.report.as_ref(), Some(&full_report));
    assert!(
        r.report
            .unwrap()
            .rule_stats
            .get("app")
            .is_some_and(|s| s.fired > 0),
        "after reset the readmitted rule fires in the re-derivation"
    );
}

/// Satellite regression: a deadline that dies inside/after the fast rung
/// must degrade to the passthrough plan — the input itself — rather than
/// surface an error.
/// Deep-term tests run their whole body on an oversized stack, as the
/// service's workers do: engine interning walks the input recursively and
/// even derived `PartialEq` on a 20k-deep term needs more than a default
/// test-thread stack in debug builds.
fn on_big_stack<T: Send>(f: impl FnOnce() -> T + Send) -> T {
    std::thread::scope(|scope| {
        std::thread::Builder::new()
            .stack_size(64 * 1024 * 1024)
            .spawn_scoped(scope, f)
            .unwrap()
            .join()
            .unwrap()
    })
}

#[test]
fn deadline_expiry_between_rungs_returns_passthrough_plan() {
    on_big_stack(deadline_expiry_between_rungs_body)
}

fn deadline_expiry_between_rungs_body() {
    let catalog = Catalog::paper();
    let props = PropDb::new();
    let breaker = Breaker::new(usize::MAX);
    let ladder = Ladder {
        catalog: &catalog,
        props: &props,
        breaker: &breaker,
        metrics: None,
        tracer: None,
        shard: 0,
        park: None,
        tenant: None,
    };
    // A workload far too large for the deadline: the fast rung burns the
    // whole budget and stops with DeadlineExpired; by the time the ladder
    // reaches the reference rung the deadline is dead, so it never runs.
    // Run on an oversized stack, as the service's workers do — engine
    // traversal is depth-clipped but interning a deep input walks it.
    let q = Arc::new(tower(20_000, "age"));
    let opts = RequestOptions {
        max_steps: 50_000,
        timeout: Some(Duration::from_millis(3)),
        backoff: Duration::from_micros(10),
        ..RequestOptions::default()
    };
    let deadline = Some(Instant::now() + Duration::from_millis(3));
    let r = ladder.run(7, &q, &opts, deadline);
    assert_eq!(r.outcome, Outcome::Passthrough);
    assert_eq!(r.plan, q, "passthrough returns the input plan verbatim");
    assert!(r.report.is_none());
    assert!(r.panics.is_empty());
    assert!(
        r.failures.iter().any(|f| f.contains("deadline expired")),
        "the fast rung's deadline failure is recorded: {:?}",
        r.failures
    );
}

/// The same property end-to-end: through the service, an expired deadline
/// yields a classified Passthrough response carrying the input plan.
#[test]
fn service_deadline_expiry_yields_passthrough_response() {
    on_big_stack(service_deadline_expiry_body)
}

fn service_deadline_expiry_body() {
    let service = Service::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let q = tower(10_000, "age");
    let r = service.call(Request::ast(q.clone()).with_options(RequestOptions {
        max_steps: 50_000,
        timeout: Some(Duration::from_millis(3)),
        backoff: Duration::from_micros(10),
        ..RequestOptions::default()
    }));
    assert_eq!(r.outcome, Outcome::Passthrough);
    assert_eq!(r.plan.as_deref(), Some(&q));
    assert!(r.error.is_some(), "failed rung attempts are reported");
}

#[test]
fn unparseable_and_oversized_requests_classify_invalid() {
    let service = Service::start(ServiceConfig {
        workers: 1,
        max_request_bytes: 1024,
        ..ServiceConfig::default()
    });
    let r = service.call(Request::text("this is ] not a query ! ("));
    assert_eq!(r.outcome, Outcome::Invalid);
    assert!(r.error.as_deref().unwrap().starts_with("kola:"));
    assert!(r.plan.is_none());

    let r = service.call(Request::text("select . from where".to_string()));
    assert_eq!(r.outcome, Outcome::Invalid);
    assert!(r.error.as_deref().unwrap().starts_with("oql:"));

    let big = format!("id . {} ! P", "id . ".repeat(400));
    assert!(big.len() > 1024);
    let r = service.call(Request {
        payload: Payload::Text(big),
        options: RequestOptions::default(),
        tenant: None,
    });
    assert_eq!(r.outcome, Outcome::Invalid);
    assert!(r.error.as_deref().unwrap().contains("request too large"));
}

#[test]
fn saturating_fleet_never_returns_a_larger_plan_than_the_fast_fleet() {
    // The engine-config knob: a fleet built over `EngineConfig::saturating()`
    // serves the same corpus through the same ladder, and every optimized
    // plan is no larger (term size, the extraction model) than the fast
    // fleet's — the e-graph seed wave makes that structural.
    let fast = Service::start(ServiceConfig {
        workers: 2,
        cache_capacity: 0,
        ..ServiceConfig::default()
    });
    let sat = Service::start(ServiceConfig {
        workers: 2,
        cache_capacity: 0,
        engine: EngineConfig::saturating(),
        ..ServiceConfig::default()
    });
    fn plan_size(q: &Query) -> usize {
        match q {
            Query::App(f, x) => {
                fn fsize(f: &Func) -> usize {
                    1 + match f {
                        Func::Compose(a, b)
                        | Func::PairWith(a, b)
                        | Func::Times(a, b)
                        | Func::Nest(a, b)
                        | Func::Unnest(a, b) => fsize(a) + fsize(b),
                        Func::Iterate(_, g) | Func::Iter(_, g) | Func::Join(_, g) => 1 + fsize(g),
                        _ => 0,
                    }
                }
                fsize(f) + plan_size(x)
            }
            Query::PairQ(a, b) => 1 + plan_size(a) + plan_size(b),
            _ => 1,
        }
    }
    for seed in 0..100u64 {
        let q = corpus_query(seed);
        let f = fast.call(Request::ast(q.clone()));
        let s = sat.call(Request::ast(q.clone()));
        assert!(
            matches!(f.outcome, Outcome::Optimized { .. }),
            "seed {seed}: fast fleet degraded: {:?}",
            f.outcome
        );
        assert!(
            matches!(s.outcome, Outcome::Optimized { .. }),
            "seed {seed}: saturating fleet degraded: {:?}",
            s.outcome
        );
        let fp = f.plan.expect("fast plan");
        let sp = s.plan.expect("saturating plan");
        assert!(
            plan_size(&sp) <= plan_size(&fp),
            "seed {seed}: saturating fleet returned a larger plan\n  fast: {fp}\n  sat : {sp}"
        );
    }
}
