//! Multi-tenant isolation, proven through the public service surface:
//!
//! 1. **Admission** (`tenant_quota_sheds_only_the_noisy_tenant`,
//!    `unknown_tenants_are_rejected_at_the_door`): a tenant at its quota
//!    gets a structured `Overloaded` while its neighbors keep admitting;
//!    a name the service was not configured with is `Invalid`, never
//!    silently folded into another tenant's state.
//! 2. **Engine-epoch disambiguation**
//!    (`shared_engines_never_alias_tenant_rule_masks`): two tenants whose
//!    breakers sit at the *same* raw generation but different rule masks
//!    share one persistent worker engine; interleaved traffic must answer
//!    byte-identically to each tenant running solo. This is the scoped
//!    `engine_epoch` doing its job — without it the engine's epoch
//!    short-circuit would treat one tenant's mask as the other's.
//! 3. **The noisy-neighbor soak** (`noisy_neighbor_soak_holds_isolation`):
//!    an aggressor pouring poison panics and admission floods into the
//!    service must leave a clean victim tenant's outcome taxonomy exactly
//!    what it is solo — every isolation invariant of
//!    [`kola_service::chaos::TenantChaosReport::violations`].
//! 4. **Export safety** (`hostile_tenant_names_export_escaped_json`):
//!    tenant names are operator-supplied strings that flow into the
//!    hand-rolled JSON metric export; hostile names must come out escaped.

use kola_service::{
    run_noisy_neighbor, Outcome, Request, RequestOptions, Response, Rung, Service, ServiceConfig,
    TenantChaosConfig,
};
use std::time::Duration;

fn id_tower_text(height: usize) -> String {
    let mut s = String::new();
    for _ in 0..height {
        s.push_str("id . ");
    }
    s.push_str("age ! P");
    s
}

fn fingerprint(r: &Response) -> String {
    format!(
        "{:?} | {:?} | {:?} | {:?} | retries={} | panics={} | {:?}",
        r.outcome,
        r.plan,
        r.report,
        r.quarantine,
        r.retries,
        r.panics.len(),
        r.error
    )
}

#[test]
fn unknown_tenants_are_rejected_at_the_door() {
    let service = Service::start(ServiceConfig {
        workers: 1,
        tenants: vec!["a".to_string()],
        ..ServiceConfig::default()
    });
    let r = service.call(Request::text("id . age ! P").for_tenant("zzz"));
    assert_eq!(r.outcome, Outcome::Invalid);
    assert!(
        r.error
            .as_deref()
            .unwrap_or_default()
            .contains("unknown tenant"),
        "rejection names the cause: {:?}",
        r.error
    );
    assert_eq!(
        &*r.tenant, "zzz",
        "the reply echoes the name the client sent"
    );
    // A known tenant still admits, and the books balance with the unknown
    // submission parked in the catch-all lane.
    let ok = service.call(Request::text("id . age ! P").for_tenant("a"));
    assert_eq!(ok.outcome, Outcome::Optimized { rung: Rung::Fast });
    assert_eq!(&*ok.tenant, "a");
    let s = service.metrics_snapshot();
    assert_eq!(
        s.family("tenant_submitted"),
        &[("a".to_string(), 1), ("other".to_string(), 1)]
    );
    assert_eq!(
        kola_service::conservation_violations(&s),
        Vec::<String>::new()
    );
}

#[test]
fn tenant_quota_sheds_only_the_noisy_tenant() {
    let service = Service::start(ServiceConfig {
        workers: 1,
        queue_capacity: 32,
        tenants: vec!["a".to_string(), "b".to_string()],
        tenant_quota: 2,
        cache_capacity: 0,
        ..ServiceConfig::default()
    });
    let held = |ms: u64| {
        Request::text(id_tower_text(3)).with_options(RequestOptions {
            hold_for: Some(Duration::from_millis(ms)),
            ..RequestOptions::default()
        })
    };
    // Occupy the single worker, then give it time to dequeue (quota slots
    // are released at dequeue, so the wall below is deterministic).
    let a1 = service
        .submit(held(300).for_tenant("a"))
        .expect("a1 admitted");
    std::thread::sleep(Duration::from_millis(100));
    // Fill a's quota with queued work, then overflow it.
    let a2 = service
        .submit(held(1).for_tenant("a"))
        .expect("a2 admitted");
    let a3 = service
        .submit(held(1).for_tenant("a"))
        .expect("a3 admitted");
    let shed = match service.submit(held(1).for_tenant("a")) {
        Err(r) => r,
        Ok(_) => panic!("a must be at quota"),
    };
    assert_eq!(shed.outcome, Outcome::Overloaded);
    assert!(
        shed.error
            .as_deref()
            .unwrap_or_default()
            .contains("at quota"),
        "the shed names the tenant wall, not the global one: {:?}",
        shed.error
    );
    assert_eq!(&*shed.tenant, "a");
    // The neighbor keeps admitting through a's wall.
    let b1 = service.submit(held(1).for_tenant("b")).expect("b admits");
    for p in [a1, a2, a3, b1] {
        let r = p.wait();
        assert_eq!(r.outcome, Outcome::Optimized { rung: Rung::Fast });
    }
    let s = service.metrics_snapshot();
    assert_eq!(s.family("tenant_overloaded"), &[("a".to_string(), 1)]);
    assert_eq!(
        kola_service::conservation_violations(&s),
        Vec::<String>::new()
    );
}

#[test]
fn shared_engines_never_alias_tenant_rule_masks() {
    // One worker serving two tenants whose breakers sit at the SAME raw
    // generation (1) but with different rules evicted: "11" for a, "app"
    // for b. The worker's one persistent engine flips between the two
    // masks on every request below.
    let multi = Service::start(ServiceConfig {
        workers: 1,
        cache_capacity: 0,
        tenants: vec!["a".to_string(), "b".to_string()],
        ..ServiceConfig::default()
    });
    let solo = |rule: &str| {
        let s = Service::start(ServiceConfig {
            workers: 1,
            cache_capacity: 0,
            ..ServiceConfig::default()
        });
        for i in 0..10 {
            s.breaker().charge(rule, 3_000 + i);
        }
        assert!(s.breaker().is_open(rule));
        s
    };
    let solo_a = solo("11");
    let solo_b = solo("app");
    for (tenant, rule) in [("a", "11"), ("b", "app")] {
        let b = multi.tenant_breaker(tenant).expect("tenant exists");
        for i in 0..10 {
            b.charge(rule, 3_000 + i);
        }
        assert!(b.is_open(rule));
        assert_eq!(b.generation(), 1);
    }
    // Interleave the tenants so every request swaps the engine's epoch;
    // each must answer exactly as its solo twin.
    for h in 2..10usize {
        let q = id_tower_text(h);
        let a = multi.call(Request::text(q.clone()).for_tenant("a"));
        assert_eq!(
            fingerprint(&a),
            fingerprint(&solo_a.call(Request::text(q.clone()))),
            "height {h}: tenant a diverged from its solo twin"
        );
        let b = multi.call(Request::text(q.clone()).for_tenant("b"));
        assert_eq!(
            fingerprint(&b),
            fingerprint(&solo_b.call(Request::text(q))),
            "height {h}: tenant b diverged from its solo twin"
        );
    }
}

#[test]
fn noisy_neighbor_soak_holds_isolation() {
    let cfg = TenantChaosConfig {
        victim_requests: 300,
        aggressor_requests: 300,
        workers: 4,
        stall: Duration::from_millis(1),
        ..TenantChaosConfig::default()
    };
    let report = run_noisy_neighbor(&cfg);
    assert_eq!(
        report.violations(),
        Vec::<String>::new(),
        "noisy-neighbor isolation violated:\n{}",
        report.summary()
    );
    assert!(
        report.aggressor.overloaded > 0,
        "the aggressor's floods never hit its quota wall"
    );
    // The solo baseline holds the same invariants (minus the aggression).
    let solo = run_noisy_neighbor(&TenantChaosConfig {
        aggressor: false,
        ..cfg
    });
    assert_eq!(
        solo.violations(),
        Vec::<String>::new(),
        "solo baseline violated:\n{}",
        solo.summary()
    );
    assert_eq!(solo.aggressor.requests, 0);
}

#[test]
fn hostile_tenant_names_export_escaped_json() {
    let hostile = "t\"en\\ant\n\u{1f}";
    let service = Service::start(ServiceConfig {
        workers: 1,
        tenants: vec![hostile.to_string()],
        ..ServiceConfig::default()
    });
    let r = service.call(Request::text("id . age ! P").for_tenant(hostile));
    assert_eq!(r.outcome, Outcome::Optimized { rung: Rung::Fast });
    let json = service.metrics_snapshot().to_json();
    assert!(
        json.contains(r#"t\"en\\ant\n\u001f"#),
        "tenant name must be escaped in the export"
    );
    assert!(
        !json.contains('\u{1f}'),
        "no raw control byte may reach the export"
    );
}
