//! Trace determinism and replay fidelity.
//!
//! Drives 300 seeded requests through a single-worker traced service —
//! twice, from two fresh services — and asserts:
//!
//! 1. **Determinism**: the two runs record *identical* trace vectors
//!    (same rules in the same order, same fingerprints, same budgets).
//!    With one worker and sequential submission the service is a pure
//!    function of the request stream, and the traces prove it.
//! 2. **Replay fidelity**: every recorded trace re-executes step-by-step
//!    on the boxed reference engine — same rule sequence, same
//!    intermediate fingerprints, same stop reason, same final plan —
//!    regardless of which rung (fast or reference) produced it.
//!
//! The stream mixes KOLA towers with real redexes, catalog templates, OQL
//! text, injected Fail-kind rule faults, and forced rung failures. No
//! deadlines and no holds: wall-clock must not shape the derivations.

use kola_exec::rng::{splitmix64, Rng};
use kola_obs::{replay, RewriteTrace};
use kola_rewrite::{Catalog, FaultKind, FaultPlan, FaultSpec, PropDb, StepSelector};
use kola_service::{Payload, Request, RequestOptions, Rung, Service, ServiceConfig};

const REQUESTS: usize = 300;
const SEED: u64 = 0x7ACE_5EED;

fn tower_text(height: usize) -> String {
    let mut s = String::new();
    for _ in 0..height {
        s.push_str("id . ");
    }
    s.push_str("age ! P");
    s
}

const TEMPLATES: &[&str] = &[
    "iterate(Kp(T), city) . iterate(Kp(T), addr) ! P",
    "iterate(Kp(T), city . addr) ! P",
    "age . id ! P",
    "sunion ! [P, Q]",
    "P union Q",
    "select p.age from p in P",
    "select p.age from p in P where p.age > 25",
    "select p from p in P where p.age > 18 and not p.age > 65",
];

/// One deterministic request: parseable payload, no deadline, no hold,
/// and a modest step cap — without a deadline, the step budget is what
/// bounds the run, and it bounds it deterministically.
fn generate(rng: &mut Rng) -> Request {
    let mut options = RequestOptions {
        max_steps: 200,
        ..RequestOptions::default()
    };
    let roll = rng.gen_range(0..100usize);
    let payload = if roll < 45 {
        Payload::Text(tower_text(1 + rng.gen_range(0..10usize)))
    } else if roll < 70 {
        Payload::Text(TEMPLATES[rng.gen_range(0..TEMPLATES.len())].to_string())
    } else if roll < 85 {
        // Fail-kind faults (never Panic: deterministic failure, no unwind):
        // the faulted rule aborts the attempt, the ladder degrades, and the
        // recorded fault plan must be re-injected verbatim at replay.
        options.faults = FaultPlan::new().with(FaultSpec {
            rule_id: if rng.gen_bool(0.5) { "app" } else { "e121" }.to_string(),
            at: StepSelector::Steps(vec![rng.gen_range(0..2usize)]),
            kind: FaultKind::Fail,
        });
        Payload::Text(tower_text(2 + rng.gen_range(0..6usize)))
    } else {
        // Forced fast-rung failure: the trace, when one is recorded, comes
        // from the *reference* rung — replay must not care.
        options.force_fail = vec![Rung::Fast];
        Payload::Text(tower_text(1 + rng.gen_range(0..6usize)))
    };
    Request {
        payload,
        options,
        tenant: None,
    }
}

/// Run the seeded stream through a fresh single-worker traced service and
/// return the recorded traces.
fn run_stream() -> Vec<RewriteTrace> {
    let service = Service::start(ServiceConfig {
        workers: 1,
        tracing: true,
        trace_capacity: REQUESTS,
        // Never open a breaker: evicting a load-bearing structural rule
        // (e.g. "app") would leave later towers grinding through the full
        // step budget instead of normalizing in a handful of steps.
        breaker_threshold: usize::MAX,
        ..ServiceConfig::default()
    });
    let mut seed = SEED;
    for i in 0..REQUESTS {
        let mut rng = Rng::seed_from_u64(splitmix64(&mut seed) ^ i as u64);
        let resp = service.call(generate(&mut rng));
        assert!(
            resp.id == i as u64,
            "sequential single-worker stream must keep request ids dense"
        );
    }
    service.traces()
}

#[test]
fn traced_stream_is_deterministic_and_replays_on_reference_engine() {
    let first = run_stream();
    let second = run_stream();

    // Determinism: two fresh services, same stream, identical traces —
    // including fingerprints, which hash only structure, so they agree
    // across unrelated intern arenas.
    assert!(
        !first.is_empty(),
        "the stream must record traces (successful optimizations happened)"
    );
    assert_eq!(
        first.len(),
        second.len(),
        "both runs must record the same number of traces"
    );
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(
            a, b,
            "request {} traced differently across runs",
            a.request_id
        );
    }

    // Coverage: both rungs contributed traces, some traces carry fault
    // plans, and some carry real multi-step derivations.
    assert!(first.iter().any(|t| t.rung == "fast"));
    assert!(first.iter().any(|t| t.rung == "reference"));
    assert!(first.iter().any(|t| t.faults != FaultPlan::default()));
    assert!(first.iter().any(|t| t.steps.len() > 2));

    // Replay fidelity: every trace re-executes exactly on the boxed
    // reference engine.
    let catalog = Catalog::paper();
    let props = PropDb::new();
    for trace in &first {
        let outcome = replay(trace, &catalog, &props);
        assert!(
            outcome.is_match(),
            "request {} ({} rung, {} steps) diverged at replay: {:?}",
            trace.request_id,
            trace.rung,
            trace.steps.len(),
            outcome
        );
    }
}
