//! Verify every rule in the paper catalog and print a summary.
//!
//! ```sh
//! cargo run -p kola-verify --bin verify-catalog --release
//! ```

use kola::typecheck::TypeEnv;
use kola_exec::datagen::{generate, DataSpec};
use kola_rewrite::{Catalog, PropDb};
use kola_verify::{verify_catalog_cached, verify_containment, VerifyCache};

fn main() {
    let env = TypeEnv::paper_env();
    let db = generate(&DataSpec::small(123));
    let catalog = Catalog::paper();
    let mut cache = VerifyCache::load_default();
    let reports = verify_catalog_cached(&env, &db, &catalog, 30, 42, &mut cache);
    let mut bad = 0;
    let mut cached = 0;
    for r in &reports {
        if r.cached {
            cached += 1;
        }
        if !r.verified() {
            bad += 1;
            println!("{r}");
        }
    }
    println!(
        "{} rules, {} not verified, {} served from cache ({})",
        reports.len(),
        bad,
        cached,
        cache.path().display()
    );

    // Operational soundness: the engine must contain injected rule faults.
    let props = PropDb::new();
    let mut violated = 0;
    for r in verify_containment(&catalog, &props) {
        println!("{r}");
        if !r.ok() {
            violated += 1;
        }
    }
    println!("{violated} containment suites violated");
}
