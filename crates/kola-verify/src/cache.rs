//! Persistent per-rule verification cache.
//!
//! Re-verifying a 600-rule catalog from scratch on every test run is pure
//! waste: a rule's verdict is a deterministic function of (a) the rule's
//! structure, (b) the trial count and seed it will be run with, and (c) the
//! version of the generator/checker logic. This module fingerprints exactly
//! those inputs and persists the set of fingerprints that have *passed*
//! under `target/` (the build's scratch space — wiped by `cargo clean`,
//! never committed).
//!
//! Only successful verdicts are cached. A failing or vacuous rule is
//! re-checked on every run, so a regression can never hide behind a stale
//! cache entry, and [`GENERATOR_VERSION`] invalidates the whole cache
//! whenever the random-term generator or trial logic changes shape.
//!
//! Fingerprints use FNV-1a rather than `std`'s `DefaultHasher`: the latter
//! is randomly keyed per process and therefore useless as a persistent key.

use crate::check::{check_rules_parallel, rule_seed, RuleReport};
use kola::db::Db;
use kola::typecheck::TypeEnv;
use kola_rewrite::rule::Rule;
use std::collections::HashSet;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Version of the trial/generator logic baked into every fingerprint. Bump
/// this whenever `check.rs` or `gen.rs` changes what a trial means — the
/// whole cache is invalidated at once.
pub const GENERATOR_VERSION: u32 = 1;

/// 64-bit FNV-1a over a byte stream — stable across processes and builds.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Structural fingerprint of one verification work item: the rule as
/// displayed (id, name, and every alternative's two sides), its direction
/// and preconditions, the trial budget, the seed its trial stream will use,
/// and [`GENERATOR_VERSION`].
pub fn fingerprint(rule: &Rule, trials: usize, seed: u64) -> u64 {
    let text = format!(
        "v{}|t{}|s{:016x}|{}|bidi={}|pre={:?}",
        GENERATOR_VERSION, trials, seed, rule, rule.bidirectional, rule.preconditions
    );
    fnv1a(text.as_bytes())
}

/// The on-disk set of fingerprints whose rules verified successfully.
#[derive(Debug)]
pub struct VerifyCache {
    path: PathBuf,
    passed: HashSet<u64>,
    dirty: bool,
}

impl VerifyCache {
    /// Default location: `target/kola-verify-cache.v1.txt` at the workspace
    /// root, resolved relative to this crate so it works from any test cwd.
    pub fn default_path() -> PathBuf {
        PathBuf::from(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/kola-verify-cache.v1.txt"
        ))
    }

    /// Load the cache at the default path (empty if absent or unreadable).
    pub fn load_default() -> VerifyCache {
        Self::load(Self::default_path())
    }

    /// Load a cache file: one lowercase-hex fingerprint per line. Unparsable
    /// lines are dropped — the worst outcome of a corrupt cache is a
    /// re-verification, never a false "verified".
    pub fn load(path: impl Into<PathBuf>) -> VerifyCache {
        let path = path.into();
        let passed = std::fs::read_to_string(&path)
            .map(|text| {
                text.lines()
                    .filter_map(|l| u64::from_str_radix(l.trim(), 16).ok())
                    .collect()
            })
            .unwrap_or_default();
        VerifyCache {
            path,
            passed,
            dirty: false,
        }
    }

    /// Number of cached successful verdicts.
    pub fn len(&self) -> usize {
        self.passed.len()
    }

    /// True iff no verdicts are cached.
    pub fn is_empty(&self) -> bool {
        self.passed.is_empty()
    }

    /// True iff this fingerprint passed on a previous run.
    pub fn contains(&self, fp: u64) -> bool {
        self.passed.contains(&fp)
    }

    /// Record a successful verdict.
    pub fn insert(&mut self, fp: u64) {
        if self.passed.insert(fp) {
            self.dirty = true;
        }
    }

    /// Persist atomically (write temp file, rename over the target), so a
    /// crashed writer leaves either the old cache or the new one — never a
    /// torn file. No-op when nothing changed.
    pub fn save(&mut self) -> std::io::Result<()> {
        if !self.dirty {
            return Ok(());
        }
        if let Some(dir) = self.path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let tmp = self.path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            let mut lines: Vec<u64> = self.passed.iter().copied().collect();
            lines.sort_unstable();
            for fp in lines {
                writeln!(f, "{fp:016x}")?;
            }
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        self.dirty = false;
        Ok(())
    }

    /// The file this cache persists to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// [`crate::verify_catalog`] with a persistent cache: rules whose
/// fingerprint already passed are reported as `cached` without running a
/// single trial; everything else runs fresh (in parallel), and new passes
/// are written back through `cache.save()`.
///
/// Reports come back in catalog order and are trial-for-trial identical to
/// an uncached run for every rule that actually runs — the per-rule seed is
/// a function of catalog position, not of which rules were skipped.
pub fn verify_catalog_cached(
    env: &TypeEnv,
    db: &Db,
    catalog: &kola_rewrite::Catalog,
    trials: usize,
    seed: u64,
    cache: &mut VerifyCache,
) -> Vec<RuleReport> {
    let rules = catalog.rules();
    let fps: Vec<u64> = rules
        .iter()
        .enumerate()
        .map(|(i, r)| fingerprint(r, trials, rule_seed(seed, i)))
        .collect();

    let misses: Vec<(usize, &Rule)> = rules
        .iter()
        .enumerate()
        .filter(|(i, _)| !cache.contains(fps[*i]))
        .collect();
    let fresh = check_rules_parallel(env, db, &misses, trials, seed);

    let mut fresh_at = misses
        .iter()
        .map(|(i, _)| *i)
        .zip(fresh)
        .collect::<std::collections::BTreeMap<usize, RuleReport>>();
    let reports: Vec<RuleReport> = rules
        .iter()
        .enumerate()
        .map(|(i, rule)| match fresh_at.remove(&i) {
            Some(report) => {
                if report.verified() {
                    cache.insert(fps[i]);
                }
                report
            }
            None => RuleReport {
                rule_id: rule.id.clone(),
                trials: 0,
                passed: 0,
                skipped: 0,
                failures: Vec::new(),
                cached: true,
            },
        })
        .collect();
    if let Err(e) = cache.save() {
        eprintln!(
            "warning: could not persist verify cache at {}: {e}",
            cache.path().display()
        );
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use kola_exec::datagen::{generate, DataSpec};

    fn setup() -> (TypeEnv, Db) {
        (TypeEnv::paper_env(), generate(&DataSpec::small(99)))
    }

    fn tmp_cache(name: &str) -> VerifyCache {
        let path = std::env::temp_dir().join(format!("kola-verify-cache-test-{name}.txt"));
        let _ = std::fs::remove_file(&path);
        VerifyCache::load(path)
    }

    #[test]
    fn fingerprint_is_stable_and_input_sensitive() {
        let r = Rule::func("9", "pi1-pairing", "pi1 . ($f, $g)", "$f");
        assert_eq!(fingerprint(&r, 25, 7), fingerprint(&r, 25, 7));
        assert_ne!(fingerprint(&r, 25, 7), fingerprint(&r, 26, 7));
        assert_ne!(fingerprint(&r, 25, 7), fingerprint(&r, 25, 8));
        let r2 = Rule::func("9", "pi1-pairing", "pi1 . ($f, $g)", "$g");
        assert_ne!(fingerprint(&r, 25, 7), fingerprint(&r2, 25, 7));
        let one_way = Rule::func("9", "pi1-pairing", "pi1 . ($f, $g)", "$f").one_way();
        assert_ne!(fingerprint(&r, 25, 7), fingerprint(&one_way, 25, 7));
    }

    #[test]
    fn second_run_is_all_cache_hits_and_failures_never_cache() {
        let (env, db) = setup();
        let mut catalog = kola_rewrite::Catalog::new();
        catalog.add(Rule::func("t1", "good", "id . $f", "$f"));
        catalog.add(Rule::func("bad", "bad", "pi1 . ($f, $g)", "$g"));

        let mut cache = tmp_cache("roundtrip");
        let first = verify_catalog_cached(&env, &db, &catalog, 30, 7, &mut cache);
        assert!(first[0].verified() && !first[0].cached);
        assert!(!first[1].verified());

        // Reload from disk: the pass is persisted, the failure is not.
        let mut cache = VerifyCache::load(cache.path().to_path_buf());
        assert_eq!(cache.len(), 1);
        let second = verify_catalog_cached(&env, &db, &catalog, 30, 7, &mut cache);
        assert!(second[0].verified() && second[0].cached);
        assert!(!second[1].verified() && !second[1].cached);
        let _ = std::fs::remove_file(cache.path());
    }

    #[test]
    fn parallel_reports_match_sequential_seeds() {
        let (env, db) = setup();
        let catalog = kola_rewrite::Catalog::paper();
        let slice: Vec<(usize, &Rule)> = catalog.rules().iter().enumerate().take(12).collect();
        let par = check_rules_parallel(&env, &db, &slice, 10, 0xBEEF);
        for (i, report) in par.iter().enumerate() {
            let seq =
                crate::check::check_rule(&env, &db, slice[i].1, 10, rule_seed(0xBEEF, slice[i].0));
            assert_eq!(report.passed, seq.passed, "rule {}", report.rule_id);
            assert_eq!(report.skipped, seq.skipped, "rule {}", report.rule_id);
            assert_eq!(report.failures, seq.failures, "rule {}", report.rule_id);
        }
    }
}
