//! Randomized rule verification — the repository's stand-in for the paper's
//! Larch/LP machine-checked proofs (see DESIGN.md §4, substitution 1).
//!
//! For each rule alternative:
//!
//! 1. Run type inference over head and body *in one shared context*, and
//!    unify their types — a rule whose two sides cannot be given a common
//!    type is rejected outright.
//! 2. Ground leftover type variables with a random palette type (varied per
//!    trial, so polymorphic rules are exercised at many types).
//! 3. Instantiate every metavariable with a random well-typed term
//!    ([`crate::gen`]); rules with an `injective(f)` precondition get `id`
//!    for `f` (injective by rule).
//! 4. Evaluate both sides — on a random input value for function/predicate
//!    rules, directly for query rules — and compare results.
//!
//! Any disagreement is a counterexample and fails the rule.

use crate::gen::{palette, Gen};
use kola::db::Db;
use kola::pattern::VarKind;
use kola::typecheck::{infer_pfunc, infer_ppred, infer_pquery, Inference, TypeEnv};
use kola::types::Type;
use kola::value::Sym;
use kola_exec::rng::Rng;
use kola_rewrite::rule::{RewritePair, Rule};
use kola_rewrite::subst::{instantiate_func, instantiate_pred, instantiate_query, Subst};
use kola_rewrite::PropKind;
use std::fmt;

/// Outcome of verifying one rule.
#[derive(Debug, Clone)]
pub struct RuleReport {
    /// The rule's id.
    pub rule_id: String,
    /// Trials attempted.
    pub trials: usize,
    /// Trials that evaluated both sides successfully and agreed.
    pub passed: usize,
    /// Trials skipped (evaluation error on both sides, or unsatisfiable
    /// precondition at the drawn types).
    pub skipped: usize,
    /// Counterexamples found (empty = verified).
    pub failures: Vec<String>,
    /// True when the verdict came from the persistent fingerprint cache
    /// (see [`crate::cache`]) instead of fresh trials.
    pub cached: bool,
}

impl RuleReport {
    /// Verified = no counterexample and at least one meaningful trial (or a
    /// cache hit recording that an identical run already passed).
    pub fn verified(&self) -> bool {
        self.failures.is_empty() && (self.passed > 0 || self.cached)
    }
}

impl fmt::Display for RuleReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cached {
            return write!(f, "rule {:>5}: verified (cached)", self.rule_id);
        }
        write!(
            f,
            "rule {:>5}: {:>4}/{} passed, {} skipped{}",
            self.rule_id,
            self.passed,
            self.trials,
            self.skipped,
            if self.failures.is_empty() {
                String::new()
            } else {
                format!(", FAILED: {}", self.failures[0])
            }
        )
    }
}

/// Verify one rule with `trials` random instantiations.
pub fn check_rule(env: &TypeEnv, db: &Db, rule: &Rule, trials: usize, seed: u64) -> RuleReport {
    let mut report = RuleReport {
        rule_id: rule.id.clone(),
        trials: 0,
        passed: 0,
        skipped: 0,
        failures: Vec::new(),
        cached: false,
    };
    let mut rng = Rng::seed_from_u64(seed);
    for alt in &rule.alts {
        for _ in 0..trials {
            report.trials += 1;
            let trial_seed = rng.gen();
            match run_trial(env, db, rule, alt, trial_seed) {
                TrialOutcome::Pass => report.passed += 1,
                TrialOutcome::Skip => report.skipped += 1,
                TrialOutcome::Fail(msg) => {
                    if report.failures.len() < 3 {
                        report.failures.push(msg);
                    }
                }
            }
        }
    }
    report
}

enum TrialOutcome {
    Pass,
    Skip,
    Fail(String),
}

/// Infer the (shared) types of an alternative's two sides; returns the
/// inference state plus the input type (None for query rules).
fn infer_alt(
    env: &TypeEnv,
    inf: &mut Inference,
    alt: &RewritePair,
) -> Result<Option<Type>, kola::types::TypeError> {
    match alt {
        RewritePair::F(l, r) => {
            let (li, lo) = infer_pfunc(env, inf, l)?;
            let (ri, ro) = infer_pfunc(env, inf, r)?;
            inf.unifier.unify(&li, &ri)?;
            inf.unifier.unify(&lo, &ro)?;
            Ok(Some(li))
        }
        RewritePair::P(l, r) => {
            let li = infer_ppred(env, inf, l)?;
            let ri = infer_ppred(env, inf, r)?;
            inf.unifier.unify(&li, &ri)?;
            Ok(Some(li))
        }
        RewritePair::Q(l, r) => {
            let lt = infer_pquery(env, inf, l)?;
            let rt = infer_pquery(env, inf, r)?;
            inf.unifier.unify(&lt, &rt)?;
            Ok(None)
        }
    }
}

fn collect_vars(alt: &RewritePair) -> Vec<(VarKind, Sym)> {
    let mut vars = Vec::new();
    match alt {
        RewritePair::F(l, r) => {
            l.vars(&mut vars);
            r.vars(&mut vars);
        }
        RewritePair::P(l, r) => {
            l.vars(&mut vars);
            r.vars(&mut vars);
        }
        RewritePair::Q(l, r) => {
            l.vars(&mut vars);
            r.vars(&mut vars);
        }
    }
    vars.sort();
    vars.dedup();
    vars
}

fn run_trial(env: &TypeEnv, db: &Db, rule: &Rule, alt: &RewritePair, seed: u64) -> TrialOutcome {
    let mut rng = Rng::seed_from_u64(seed);
    let mut inf = Inference::new();
    let input_ty = match infer_alt(env, &mut inf, alt) {
        Ok(t) => t,
        Err(e) => return TrialOutcome::Fail(format!("type inference failed: {e}")),
    };

    // Preconditioned function variables are pinned to `id` (sound for the
    // only property we use, injectivity); that forces input == output.
    let mut pinned_id: Vec<Sym> = Vec::new();
    for pre in &rule.preconditions {
        if pre.prop == PropKind::Injective {
            let kola_rewrite::PropTerm::FuncVar(name) = &pre.subject;
            if let Some((fi, fo)) = inf.fvars.get(name).cloned() {
                if inf.unifier.unify(&fi, &fo).is_err() {
                    return TrialOutcome::Skip;
                }
                pinned_id.push(name.clone());
            }
        }
    }

    // Ground everything with a random palette default.
    let defaults = palette();
    let default = defaults[rng.gen_range(0..defaults.len())].clone();
    let ground = |inf: &Inference, t: &Type| inf.unifier.ground(t, &default);

    let mut gen = Gen::new(db, Rng::seed_from_u64(rng.gen()));
    let mut subst = Subst::new();
    for (kind, name) in collect_vars(alt) {
        match kind {
            VarKind::Func => {
                let (fi, fo) = inf
                    .fvars
                    .get(&name)
                    .cloned()
                    .expect("inference visited every var");
                let (fi, fo) = (ground(&inf, &fi), ground(&inf, &fo));
                let f = if pinned_id.contains(&name) {
                    kola::term::Func::Id
                } else {
                    gen.func(&fi, &fo, 2)
                };
                subst.bind_func(&name, &f);
            }
            VarKind::Pred => {
                let pi = inf.pvars.get(&name).cloned().expect("inference");
                let pi = ground(&inf, &pi);
                let p = gen.pred(&pi, 2);
                subst.bind_pred(&name, &p);
            }
            VarKind::Obj => {
                let ot = inf.ovars.get(&name).cloned().expect("inference");
                let ot = ground(&inf, &ot);
                let v = gen.value(&ot);
                subst.bind_obj(&name, &kola::term::Query::Lit(v));
            }
        }
    }

    match alt {
        RewritePair::F(l, r) => {
            let (Ok(lf), Ok(rf)) = (instantiate_func(l, &subst), instantiate_func(r, &subst))
            else {
                return TrialOutcome::Fail("unbound var in rule body".into());
            };
            let in_ty = ground(&inf, &input_ty.expect("func rules have inputs"));
            let x = gen.value(&in_ty);
            compare(
                kola::eval::eval_func(db, &lf, &x),
                kola::eval::eval_func(db, &rf, &x),
                || format!("{lf}  vs  {rf}  on {x}"),
            )
        }
        RewritePair::P(l, r) => {
            let (Ok(lp), Ok(rp)) = (instantiate_pred(l, &subst), instantiate_pred(r, &subst))
            else {
                return TrialOutcome::Fail("unbound var in rule body".into());
            };
            let in_ty = ground(&inf, &input_ty.expect("pred rules have inputs"));
            let x = gen.value(&in_ty);
            compare(
                kola::eval::eval_pred(db, &lp, &x),
                kola::eval::eval_pred(db, &rp, &x),
                || format!("{lp}  vs  {rp}  on {x}"),
            )
        }
        RewritePair::Q(l, r) => {
            let (Ok(lq), Ok(rq)) = (instantiate_query(l, &subst), instantiate_query(r, &subst))
            else {
                return TrialOutcome::Fail("unbound var in rule body".into());
            };
            compare(
                kola::eval::eval_query(db, &lq),
                kola::eval::eval_query(db, &rq),
                || format!("{lq}  vs  {rq}"),
            )
        }
    }
}

fn compare<T: PartialEq + fmt::Debug>(
    l: Result<T, kola::eval::EvalError>,
    r: Result<T, kola::eval::EvalError>,
    ctx: impl FnOnce() -> String,
) -> TrialOutcome {
    match (l, r) {
        (Ok(a), Ok(b)) => {
            if a == b {
                TrialOutcome::Pass
            } else {
                TrialOutcome::Fail(format!("{}: {a:?} != {b:?}", ctx()))
            }
        }
        // Both stuck: the instantiation was degenerate; don't count it.
        (Err(_), Err(_)) => TrialOutcome::Skip,
        (Ok(a), Err(e)) => TrialOutcome::Fail(format!("{}: lhs {a:?}, rhs stuck {e}", ctx())),
        (Err(e), Ok(b)) => TrialOutcome::Fail(format!("{}: lhs stuck {e}, rhs {b:?}", ctx())),
    }
}

/// Verify that normalizing a query preserves its semantics: evaluate the
/// query on `db` before and after running it to a fixpoint of `rule_ids`
/// on the configured engine, and compare the results.
///
/// This complements the structural parity suite (fast engine vs boxed
/// engine) with a *semantic* gate: even a derivation both engines agree on
/// is wrong if it changes what the query computes. Trials where both sides
/// are stuck (evaluation error) are treated as vacuously preserved, mirroring
/// [`check_rule`]'s skip convention.
pub fn check_normalization_semantics(
    db: &Db,
    catalog: &kola_rewrite::Catalog,
    props: &kola_rewrite::PropDb,
    rule_ids: &[&str],
    q: &kola::term::Query,
    config: kola_rewrite::EngineConfig,
) -> Result<(), String> {
    let runner = kola_rewrite::Runner::new(catalog, props).with_engine(config);
    let mut trace = kola_rewrite::Trace::new();
    let (normalized, _) = runner.run(
        &kola_rewrite::strategy::fix(rule_ids),
        q.clone(),
        &mut trace,
    );
    match (
        kola::eval::eval_query(db, q),
        kola::eval::eval_query(db, &normalized),
    ) {
        (Ok(a), Ok(b)) if a == b => Ok(()),
        (Ok(a), Ok(b)) => Err(format!(
            "normalization changed semantics: {a:?} != {b:?}\n  in : {q}\n  out: {normalized}\n  via: {:?}",
            trace.justifications()
        )),
        (Err(_), Err(_)) => Ok(()),
        (Ok(a), Err(e)) => Err(format!(
            "normalized query is stuck ({e}) but input evaluates to {a:?}\n  in : {q}\n  out: {normalized}"
        )),
        (Err(e), Ok(b)) => Err(format!(
            "input is stuck ({e}) but normalized query evaluates to {b:?}\n  in : {q}\n  out: {normalized}"
        )),
    }
}

/// The semantic gate for an already-produced plan: evaluate `input` and
/// `plan` on `db` and require agreement. This is
/// [`check_normalization_semantics`] with the normalization factored out —
/// the optimization service uses it to gate every ladder rung's output
/// (including degraded and passthrough plans) without rerunning the
/// engine. Both sides stuck counts as vacuously preserved, mirroring
/// [`check_rule`]'s skip convention.
pub fn check_plan_semantics(
    db: &Db,
    input: &kola::term::Query,
    plan: &kola::term::Query,
) -> Result<(), String> {
    match (
        kola::eval::eval_query(db, input),
        kola::eval::eval_query(db, plan),
    ) {
        (Ok(a), Ok(b)) if a == b => Ok(()),
        (Ok(a), Ok(b)) => Err(format!(
            "plan changed semantics: {a:?} != {b:?}\n  in  : {input}\n  plan: {plan}"
        )),
        (Err(_), Err(_)) => Ok(()),
        (Ok(a), Err(e)) => Err(format!(
            "plan is stuck ({e}) but input evaluates to {a:?}\n  in  : {input}\n  plan: {plan}"
        )),
        (Err(e), Ok(b)) => Err(format!(
            "input is stuck ({e}) but plan evaluates to {b:?}\n  in  : {input}\n  plan: {plan}"
        )),
    }
}

/// The per-rule seed used by [`verify_catalog`]: a pure function of the
/// catalog seed and the rule's *position*, so results are deterministic no
/// matter which worker thread picks the rule up.
pub fn rule_seed(seed: u64, position: usize) -> u64 {
    seed ^ (position as u64) << 8
}

/// Verify every rule in a catalog. Returns one report per rule, in catalog
/// order.
///
/// Rules are checked across `available_parallelism` worker threads pulling
/// from a shared atomic cursor. Each rule's trial stream is seeded by
/// [`rule_seed`] from its catalog position alone, so the reports are
/// bit-identical to a sequential run regardless of scheduling.
pub fn verify_catalog(
    env: &TypeEnv,
    db: &Db,
    catalog: &kola_rewrite::Catalog,
    trials: usize,
    seed: u64,
) -> Vec<RuleReport> {
    let indexed: Vec<(usize, &kola_rewrite::rule::Rule)> =
        catalog.rules().iter().enumerate().collect();
    check_rules_parallel(env, db, &indexed, trials, seed)
}

/// Parallel driver shared by [`verify_catalog`] and the cached variant in
/// [`crate::cache`]: check `(position, rule)` pairs on worker threads and
/// return reports in input order. Positions feed [`rule_seed`], so a subset
/// run (cache misses only) reproduces exactly the trials a full run would
/// have given those rules.
pub(crate) fn check_rules_parallel(
    env: &TypeEnv,
    db: &Db,
    rules: &[(usize, &kola_rewrite::rule::Rule)],
    trials: usize,
    seed: u64,
) -> Vec<RuleReport> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let n = rules.len();
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n.max(1));
    let cursor = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<RuleReport>>> = Mutex::new(vec![None; n]);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let at = cursor.fetch_add(1, Ordering::Relaxed);
                if at >= n {
                    break;
                }
                let (pos, rule) = rules[at];
                let report = check_rule(env, db, rule, trials, rule_seed(seed, pos));
                slots.lock().unwrap()[at] = Some(report);
            });
        }
    });
    slots
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|r| r.expect("worker filled every slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kola_exec::datagen::{generate, DataSpec};

    fn setup() -> (TypeEnv, Db) {
        (TypeEnv::paper_env(), generate(&DataSpec::small(99)))
    }

    #[test]
    fn sound_rules_verify() {
        let (env, db) = setup();
        for (id, lhs, rhs) in [
            ("t1", "pi1 . ($f, $g)", "$f"),
            ("t2", "id . $f", "$f"),
            (
                "t3",
                "iterate(%p, $f) . iterate(%q, $g)",
                "iterate(%q & %p @ $g, $f . $g)",
            ),
        ] {
            let rule = Rule::func(id, id, lhs, rhs);
            let report = check_rule(&env, &db, &rule, 40, 7);
            assert!(report.verified(), "{report}");
        }
    }

    #[test]
    fn unsound_rules_caught() {
        let (env, db) = setup();
        // pi1 swapped for pi2: wrong.
        let bad = Rule::func("bad1", "bad", "pi1 . ($f, $g)", "$g");
        let report = check_rule(&env, &db, &bad, 60, 11);
        assert!(!report.verified(), "{report}");
        // Dropping a conjunct: wrong.
        let bad = Rule::pred("bad2", "bad", "%p & %q", "%p");
        let report = check_rule(&env, &db, &bad, 60, 13);
        assert!(!report.verified(), "{report}");
        // gt is not its own converse.
        let bad = Rule::pred("bad3", "bad", "inv(gt)", "gt");
        let report = check_rule(&env, &db, &bad, 60, 17);
        assert!(!report.verified(), "{report}");
    }

    #[test]
    fn paper_leq_reading_is_unsound() {
        // The literal Figure 5 rule 7 (`inv(gt) == leq`) fails — evidence
        // for the converse-vs-complement correction in the catalog docs.
        let (env, db) = setup();
        let as_printed = Rule::pred("7-lit", "paper-7", "inv(gt)", "leq");
        let report = check_rule(&env, &db, &as_printed, 80, 19);
        assert!(!report.verified(), "{report}");
        // Our corrected reading passes.
        let corrected = Rule::pred("7", "ours", "inv(gt)", "lt");
        let report = check_rule(&env, &db, &corrected, 80, 19);
        assert!(report.verified(), "{report}");
    }

    #[test]
    fn fast_normalization_preserves_semantics() {
        let (_, db) = setup();
        let catalog = kola_rewrite::Catalog::paper();
        let props = kola_rewrite::PropDb::new();
        let rules = ["1", "2", "3", "4"];
        for src in [
            "iterate(Kp(T), id . age) ! P",
            "iterate(Kp(T), (id . age, id)) ! P",
            "iterate(Kp(T) & Kp(T), age . id . id) ! V",
        ] {
            let q = kola::parse::parse_query(src).unwrap();
            for config in [
                kola_rewrite::EngineConfig::naive(),
                kola_rewrite::EngineConfig::fast(),
            ] {
                check_normalization_semantics(&db, &catalog, &props, &rules, &q, config)
                    .unwrap_or_else(|e| panic!("{src}: {e}"));
            }
        }
    }

    #[test]
    fn query_rule_verifies() {
        let (env, db) = setup();
        let rule = Rule::query(
            "19t",
            "bottom-out",
            "iterate(Kp(T), (id, Kf(^B))) ! ^A",
            "nest(pi1, pi2) . (join(Kp(T), id), pi1) ! [^A, ^B]",
        );
        let report = check_rule(&env, &db, &rule, 40, 23);
        assert!(report.verified(), "{report}");
    }

    #[test]
    fn precondition_rule_verifies_with_id() {
        let (env, db) = setup();
        let rule = Rule::query(
            "e100t",
            "inj",
            "(iterate(Kp(T), $f) ! ^A) intersect (iterate(Kp(T), $f) ! ^B)",
            "iterate(Kp(T), $f) ! (^A intersect ^B)",
        )
        .with_precondition(PropKind::Injective, kola_rewrite::PropTerm::func("f"));
        let report = check_rule(&env, &db, &rule, 40, 29);
        assert!(report.verified(), "{report}");
    }
}
