//! Fault-containment verification for the governed rewrite engine.
//!
//! Where [`crate::check`] verifies that rules are *semantically sound*,
//! this module verifies that the engine around them is *operationally
//! sound*: under deterministically injected rule failures and oversized
//! rewrite results, a governed run must
//!
//! 1. complete without panicking,
//! 2. keep its accounting consistent (`report.steps` equals the trace
//!    length, per-rule fire counts sum to the step count),
//! 3. never exceed its step budget,
//! 4. quarantine rules only after the configured number of failures, and
//! 5. never let a faulted rule appear in the derivation as *fired*.
//!
//! The checks run the hidden-join workloads (KG1 plus synthetic depths)
//! through [`kola_rewrite::rewrite_fix_with`], first cleanly to learn
//! which rules participate, then once per participating rule with that
//! rule sabotaged.

use kola::term::Query;
use kola_rewrite::hidden_join;
use kola_rewrite::{
    rewrite_fix_with, Budget, Catalog, FaultKind, FaultPlan, FaultSpec, Oriented, PropDb,
    Rewritten, StepSelector,
};
use std::fmt;

/// The break-up/cleanup rule set (step 1 of the §4.1 pipeline): a forward
/// orientation of it terminates on every input, which makes it the right
/// substrate for containment runs.
pub fn standard_rules(catalog: &Catalog) -> Vec<Oriented<'_>> {
    ["17", "18", "2", "1", "3", "4", "4a", "9", "10", "5", "6"]
        .iter()
        .filter_map(|id| catalog.get(id).map(Oriented::fwd))
        .collect()
}

/// Outcome of one containment suite (one workload query).
#[derive(Debug, Clone)]
pub struct ContainmentReport {
    /// Workload name.
    pub name: String,
    /// Governed runs executed (clean + one per sabotaged rule per fault kind).
    pub runs: usize,
    /// Invariant violations found (empty = contained).
    pub violations: Vec<String>,
}

impl ContainmentReport {
    /// Contained = every run satisfied every invariant.
    pub fn ok(&self) -> bool {
        self.violations.is_empty() && self.runs > 0
    }
}

impl fmt::Display for ContainmentReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "containment {:>16}: {:>3} runs{}",
            self.name,
            self.runs,
            if self.violations.is_empty() {
                ", contained".to_string()
            } else {
                format!(", VIOLATED: {}", self.violations[0])
            }
        )
    }
}

/// The invariants every governed run must satisfy, faulted or not.
/// Returns one message per violation.
pub fn run_invariants(r: &Rewritten, budget: &Budget) -> Vec<String> {
    let mut v = Vec::new();
    if r.report.steps != r.trace.steps.len() {
        v.push(format!(
            "report.steps {} != trace length {}",
            r.report.steps,
            r.trace.steps.len()
        ));
    }
    if r.report.steps > budget.max_steps {
        v.push(format!(
            "steps {} exceed budget {}",
            r.report.steps, budget.max_steps
        ));
    }
    let fired: usize = r.report.rule_stats.values().map(|s| s.fired).sum();
    if fired != r.report.steps {
        v.push(format!(
            "per-rule fire counts sum to {fired}, report says {} steps",
            r.report.steps
        ));
    }
    for q in &r.report.quarantined {
        let failed = r.report.rule_stats.get(q).map_or(0, |s| s.failed);
        if failed < budget.quarantine_after {
            v.push(format!(
                "rule {q} quarantined after only {failed} failures (threshold {})",
                budget.quarantine_after
            ));
        }
    }
    v
}

/// Run the full containment suite for one workload query.
pub fn check_containment(
    rules: &[Oriented],
    props: &PropDb,
    name: &str,
    q: &Query,
    budget: &Budget,
) -> ContainmentReport {
    let mut report = ContainmentReport {
        name: name.to_string(),
        runs: 0,
        violations: Vec::new(),
    };
    fn record(report: &mut ContainmentReport, budget: &Budget, label: &str, r: &Rewritten) {
        for msg in run_invariants(r, budget) {
            report.violations.push(format!("[{label}] {msg}"));
        }
        report.runs += 1;
    }

    // Clean run: learn which rules participate, and the reference result.
    let clean = rewrite_fix_with(rules, q, props, budget, &FaultPlan::new());
    record(&mut report, budget, "clean", &clean);
    let participants: Vec<String> = clean
        .report
        .rule_stats
        .iter()
        .filter(|(_, s)| s.fired > 0)
        .map(|(id, _)| id.clone())
        .collect();

    for rule_id in &participants {
        // Sabotage 1: the rule always fails. It must never fire, and the
        // engine must still terminate within budget.
        let plan = FaultPlan::new().with(FaultSpec {
            rule_id: rule_id.clone(),
            at: StepSelector::Always,
            kind: FaultKind::Fail,
        });
        let r = rewrite_fix_with(rules, q, props, budget, &plan);
        record(&mut report, budget, &format!("fail:{rule_id}"), &r);
        if let Some(s) = r.report.rule_stats.get(rule_id) {
            if s.fired > 0 {
                report.violations.push(format!(
                    "[fail:{rule_id}] faulted rule fired {} times",
                    s.fired
                ));
            }
        }

        // Sabotage 2: the rule succeeds but returns a bloated term. The
        // engine must reject the oversize result (charging the rule) and
        // either quarantine it or stop, still within budget.
        let plan = FaultPlan::new().with(FaultSpec {
            rule_id: rule_id.clone(),
            at: StepSelector::Always,
            kind: FaultKind::Oversize(budget.max_term_size + 1),
        });
        let r = rewrite_fix_with(rules, q, props, budget, &plan);
        record(&mut report, budget, &format!("oversize:{rule_id}"), &r);
        let failed = r.report.rule_stats.get(rule_id).map_or(0, |s| s.failed);
        if failed == 0 {
            report.violations.push(format!(
                "[oversize:{rule_id}] oversize result was not charged to the rule"
            ));
        }
    }
    report
}

/// Containment suite over the standard hidden-join workloads.
pub fn verify_containment(catalog: &Catalog, props: &PropDb) -> Vec<ContainmentReport> {
    let rules = standard_rules(catalog);
    // A modest term-size limit keeps the Oversize sabotage itself cheap:
    // the injected bloat is max_term_size + 1 nodes deep.
    let budget = Budget::default().quarantine_after(2).term_size(4_096);
    let mut workloads: Vec<(String, Query)> =
        vec![("garage-kg1".to_string(), hidden_join::garage_query_kg1())];
    for n in 1..=3 {
        workloads.push((
            format!("synthetic-{n}"),
            hidden_join::synthetic_hidden_join(n),
        ));
    }
    workloads
        .iter()
        .map(|(name, q)| check_containment(&rules, props, name, q, &budget))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kola_rewrite::StopReason;

    #[test]
    fn standard_workloads_are_contained() {
        let (c, p) = (Catalog::paper(), PropDb::new());
        for report in verify_containment(&c, &p) {
            assert!(report.ok(), "{report}\nall: {:?}", report.violations);
        }
    }

    #[test]
    fn always_failing_rule_is_quarantined() {
        let (c, p) = (Catalog::paper(), PropDb::new());
        let rules = standard_rules(&c);
        let budget = Budget::default().quarantine_after(2);
        let q = hidden_join::garage_query_kg1();
        // Whichever rule fires most in the clean run is the one to sabotage.
        let clean = rewrite_fix_with(&rules, &q, &p, &budget, &FaultPlan::new());
        let busy = clean
            .report
            .rule_stats
            .iter()
            .max_by_key(|(_, s)| s.fired)
            .map(|(id, _)| id.clone())
            .expect("clean run fires rules");
        let plan = FaultPlan::new().with(FaultSpec {
            rule_id: busy.clone(),
            at: StepSelector::Always,
            kind: FaultKind::Fail,
        });
        let r = rewrite_fix_with(&rules, &q, &p, &budget, &plan);
        assert!(
            r.report.is_quarantined(&busy),
            "rule {busy} should be quarantined: {}",
            r.report
        );
        assert_eq!(r.report.rule_stats[&busy].fired, 0);
    }

    #[test]
    fn intermittent_fault_still_converges() {
        let (c, p) = (Catalog::paper(), PropDb::new());
        // Failures only at selected steps: the engine retries the rule at
        // later steps and the rewrite still reaches a normal form.
        let budget = Budget::default();
        let plan = FaultPlan::new().with(FaultSpec {
            rule_id: "2".to_string(),
            at: StepSelector::Steps(vec![0, 1]),
            kind: FaultKind::Fail,
        });
        let q = hidden_join::garage_query_kg1();
        let r = rewrite_fix_with(&standard_rules(&c), &q, &p, &budget, &plan);
        assert_eq!(r.report.stop, StopReason::NormalForm, "{}", r.report);
        assert!(run_invariants(&r, &budget).is_empty());
    }
}
