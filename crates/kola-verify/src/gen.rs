//! Type-directed random generation of KOLA values, functions and
//! predicates.
//!
//! The verification harness instantiates a rule's metavariables with random
//! *well-typed* terms; generation is driven by the ground types inferred by
//! `kola::typecheck`. Depth-bounded: at depth 0 only leaves (identity,
//! constants, projections, schema primitives) are produced.

use kola::builder as k;
use kola::db::Db;
use kola::term::{Func, Pred, Query};
use kola::types::Type;
use kola::value::{ObjId, Value, ValueSet};
use kola_exec::rng::Rng;

/// A generator bound to a database (for object references and schema
/// primitives).
pub struct Gen<'a> {
    /// The database values refer into.
    pub db: &'a Db,
    /// RNG.
    pub rng: Rng,
}

/// The palette of ground types used to fill unconstrained positions
/// (leftover type variables, composition midpoints).
pub fn palette() -> Vec<Type> {
    vec![
        Type::Int,
        Type::Bool,
        Type::Str,
        Type::pair(Type::Int, Type::Int),
        Type::set(Type::Int),
    ]
}

impl<'a> Gen<'a> {
    /// Create a generator.
    pub fn new(db: &'a Db, rng: Rng) -> Self {
        Gen { db, rng }
    }

    /// A random ground type from the palette.
    pub fn random_type(&mut self) -> Type {
        let p = palette();
        p[self.rng.gen_range(0..p.len())].clone()
    }

    /// Generate a random value of a ground type.
    pub fn value(&mut self, ty: &Type) -> Value {
        match ty {
            Type::Unit => Value::Unit,
            Type::Bool => Value::Bool(self.rng.gen()),
            Type::Int => Value::Int(self.rng.gen_range(-10..=40i64)),
            Type::Str => {
                let words = ["a", "b", "c", "x", "y"];
                Value::str(words[self.rng.gen_range(0..words.len())])
            }
            Type::Obj(class) => {
                let n = self.db.count(*class).max(1) as u32;
                Value::Obj(ObjId {
                    class: *class,
                    idx: self.rng.gen_range(0..n),
                })
            }
            // Equality-sensitive rules (eq, and leq vs lt) only reveal
            // themselves on pairs with equal components, which independent
            // draws rarely produce; generate them deliberately often.
            Type::Pair(a, b) if a == b => {
                if self.rng.gen_bool(0.25) {
                    let v = self.value(a);
                    Value::pair(v.clone(), v)
                } else {
                    Value::pair(self.value(a), self.value(b))
                }
            }
            Type::Pair(a, b) => Value::pair(self.value(a), self.value(b)),
            Type::Set(t) => {
                let n = self.rng.gen_range(0..=4usize);
                let mut s = ValueSet::new();
                for _ in 0..n {
                    s.insert(self.value(t));
                }
                Value::Set(s)
            }
            Type::Bag(t) => {
                let n = self.rng.gen_range(0..=4usize);
                let mut b = kola::bag::ValueBag::new();
                for _ in 0..n {
                    let mult = self.rng.gen_range(1..=3usize);
                    b.insert_n(self.value(t), mult);
                }
                Value::Bag(b)
            }
            Type::Var(_) => Value::Unit, // callers ground first
        }
    }

    /// Generate a random function of type `input -> output` (ground types).
    pub fn func(&mut self, input: &Type, output: &Type, depth: usize) -> Func {
        let mut options: Vec<u8> = vec![0]; // 0 = Kf(const) always works
        if input == output {
            options.push(1); // id
        }
        if let Type::Pair(a, b) = input {
            if **a == *output {
                options.push(2); // pi1
            }
            if **b == *output {
                options.push(3); // pi2
            }
        }
        // Schema primitive with matching signature.
        let mut prims = Vec::new();
        if let Type::Obj(class) = input {
            for attr in &self.db.schema().class(*class).attrs {
                if attr.ty == *output {
                    prims.push(attr.name.clone());
                }
            }
            if !prims.is_empty() {
                options.push(4);
            }
        }
        if depth > 0 {
            options.push(5); // compose
            options.push(6); // cond
            if matches!(output, Type::Pair(..)) {
                options.push(7); // pairing
            }
            if let (Type::Set(a), Type::Set(b)) = (input, output) {
                let _ = (a, b);
                options.push(8); // iterate
            }
            options.push(9); // curry
        }
        match options[self.rng.gen_range(0..options.len())] {
            0 => k::kf(self.value(output)),
            1 => Func::Id,
            2 => Func::Pi1,
            3 => Func::Pi2,
            4 => Func::Prim(prims[self.rng.gen_range(0..prims.len())].clone()),
            5 => {
                let mid = if self.rng.gen_bool(0.5) {
                    self.random_type()
                } else {
                    output.clone()
                };
                let g = self.func(input, &mid, depth - 1);
                let f = self.func(&mid, output, depth - 1);
                k::o(f, g)
            }
            6 => {
                let p = self.pred(input, depth - 1);
                let f = self.func(input, output, depth - 1);
                let g = self.func(input, output, depth - 1);
                k::con(p, f, g)
            }
            7 => {
                let Type::Pair(c, d) = output else {
                    unreachable!()
                };
                let f = self.func(input, c, depth - 1);
                let g = self.func(input, d, depth - 1);
                k::pairf(f, g)
            }
            8 => {
                let (Type::Set(a), Type::Set(b)) = (input, output) else {
                    unreachable!()
                };
                let p = self.pred(a, depth - 1);
                let f = self.func(a, b, depth - 1);
                k::iterate(p, f)
            }
            9 => {
                let payload_ty = self.random_type();
                let inner_in = Type::pair(payload_ty.clone(), input.clone());
                let f = self.func(&inner_in, output, depth - 1);
                k::cf(f, Query::Lit(self.value(&payload_ty)))
            }
            _ => unreachable!(),
        }
    }

    /// Generate a random predicate over `input` (ground type).
    pub fn pred(&mut self, input: &Type, depth: usize) -> Pred {
        let mut options: Vec<u8> = vec![0]; // Kp(b)
        if let Type::Pair(a, b) = input {
            if a == b {
                options.push(1); // eq
            }
            if **a == Type::Int && **b == Type::Int {
                options.push(2); // comparisons
            }
            if **b == Type::set((**a).clone()) {
                options.push(3); // in
            }
            if depth > 0 {
                options.push(7); // conv
            }
        }
        if depth > 0 {
            options.push(4); // oplus
            options.push(5); // and/or
            options.push(6); // not
        }
        match options[self.rng.gen_range(0..options.len())] {
            0 => k::kp(self.rng.gen()),
            1 => Pred::Eq,
            2 => [Pred::Lt, Pred::Leq, Pred::Gt, Pred::Geq][self.rng.gen_range(0..4usize)].clone(),
            3 => Pred::In,
            4 => {
                // p ⊕ f with a comparison-friendly midpoint.
                let mid = Type::pair(Type::Int, Type::Int);
                let f = self.func(input, &mid, depth - 1);
                let p = self.pred(&mid, depth - 1);
                k::oplus(p, f)
            }
            5 => {
                let p = self.pred(input, depth - 1);
                let q = self.pred(input, depth - 1);
                if self.rng.gen_bool(0.5) {
                    k::and(p, q)
                } else {
                    k::or(p, q)
                }
            }
            6 => k::not(self.pred(input, depth - 1)),
            7 => {
                let Type::Pair(a, b) = input else {
                    unreachable!()
                };
                let sw = Type::pair((**b).clone(), (**a).clone());
                k::inv(self.pred(&sw, depth - 1))
            }
            _ => unreachable!(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kola::typecheck::{typecheck_func, typecheck_pred, TypeEnv};
    use kola_exec::datagen::{generate, DataSpec};

    fn env() -> TypeEnv {
        TypeEnv::paper_env()
    }

    #[test]
    fn generated_values_have_their_type() {
        let db = generate(&DataSpec::small(1));
        let mut g = Gen::new(&db, Rng::seed_from_u64(1));
        for ty in palette() {
            for _ in 0..20 {
                let v = g.value(&ty);
                let mut inf = kola::typecheck::Inference::new();
                let got = kola::typecheck::type_of_value(&mut inf, &v).unwrap();
                // Empty sets infer Set(var); unify instead of comparing.
                assert!(
                    inf.unifier.unify(&got, &ty).is_ok(),
                    "value {v} of type {got} vs requested {ty}"
                );
            }
        }
    }

    #[test]
    fn generated_funcs_typecheck() {
        let db = generate(&DataSpec::small(2));
        let mut g = Gen::new(&db, Rng::seed_from_u64(2));
        let types = palette();
        for i in 0..100 {
            let input = types[i % types.len()].clone();
            let output = types[(i * 7 + 3) % types.len()].clone();
            let f = g.func(&input, &output, 3);
            let ft = typecheck_func(&env(), &f).unwrap_or_else(|e| panic!("{f} ill-typed: {e}"));
            let mut u = kola::types::Unifier::new();
            assert!(
                u.unify(&ft.input, &input).is_ok() && u.unify(&ft.output, &output).is_ok(),
                "{f} : {ft} vs requested {input} -> {output}"
            );
        }
    }

    #[test]
    fn generated_preds_typecheck() {
        let db = generate(&DataSpec::small(3));
        let mut g = Gen::new(&db, Rng::seed_from_u64(3));
        for ty in palette() {
            for _ in 0..30 {
                let p = g.pred(&ty, 3);
                let pt =
                    typecheck_pred(&env(), &p).unwrap_or_else(|e| panic!("{p} ill-typed: {e}"));
                let mut u = kola::types::Unifier::new();
                assert!(u.unify(&pt, &ty).is_ok(), "{p} : {pt} vs {ty}");
            }
        }
    }

    #[test]
    fn generated_terms_evaluate() {
        // Well-typed generated functions must not get stuck on well-typed
        // generated inputs.
        let db = generate(&DataSpec::small(4));
        let mut g = Gen::new(&db, Rng::seed_from_u64(4));
        for i in 0..200 {
            let tys = palette();
            let input = tys[i % tys.len()].clone();
            let output = tys[(i * 3 + 1) % tys.len()].clone();
            let f = g.func(&input, &output, 2);
            let x = g.value(&input);
            kola::eval::eval_func(&db, &f, &x).unwrap_or_else(|e| panic!("{f} ! {x}: {e}"));
        }
    }
}
