#![warn(missing_docs)]
//! # kola-verify — randomized, type-directed rule verification
//!
//! The paper proved its rules with the Larch theorem prover (LP); this
//! crate substitutes mechanized *testing*: rule metavariables are
//! instantiated with random well-typed terms and both sides are evaluated
//! on generated databases. A single disagreement is a counterexample. See
//! DESIGN.md §4 for the substitution rationale.
pub mod cache;
pub mod check;
pub mod containment;
pub mod gen;

pub use cache::{fingerprint, verify_catalog_cached, VerifyCache, GENERATOR_VERSION};
pub use check::{
    check_normalization_semantics, check_plan_semantics, check_rule, rule_seed, verify_catalog,
    RuleReport,
};
pub use containment::{check_containment, run_invariants, verify_containment, ContainmentReport};
pub use gen::{palette, Gen};
