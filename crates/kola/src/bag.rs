//! Bags (multisets) — the paper's §6 extension, implemented.
//!
//! "Our current efforts … extending KOLA to incorporate other bulk types
//! besides sets, both to increase compatibility with languages such as OQL
//! (which supports bags and lists also) and to permit expressions of
//! optimizations that exploit these kinds of collections (e.g.
//! optimizations that defer duplicate elimination can be expressed as
//! transformations that produce bags as intermediate results)."
//!
//! [`ValueBag`] is a canonical multiset (element → multiplicity); the
//! combinators live in [`crate::term::Func`] (`bagify`, `dedup`,
//! `biterate`, `bunion`, `bflat`) with semantics in [`crate::eval`]; the
//! dedup-deferral rules are in the rewrite catalog (`b1`–`b6`).

use crate::value::Value;
use std::collections::BTreeMap;
use std::fmt;

/// A canonical, ordered multiset of values.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ValueBag(pub BTreeMap<Value, usize>);

impl ValueBag {
    /// The empty bag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of elements, counting multiplicity.
    pub fn len(&self) -> usize {
        self.0.values().sum()
    }

    /// Number of *distinct* elements.
    pub fn distinct(&self) -> usize {
        self.0.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Insert one occurrence of `v`.
    pub fn insert(&mut self, v: Value) {
        self.insert_n(v, 1);
    }

    /// Insert `n` occurrences of `v`.
    pub fn insert_n(&mut self, v: Value, n: usize) {
        if n == 0 {
            return;
        }
        *self.0.entry(v).or_insert(0) += n;
    }

    /// Multiplicity of `v` (0 if absent).
    pub fn count(&self, v: &Value) -> usize {
        self.0.get(v).copied().unwrap_or(0)
    }

    /// Iterate over distinct elements with multiplicities.
    pub fn iter(&self) -> impl Iterator<Item = (&Value, usize)> {
        self.0.iter().map(|(v, n)| (v, *n))
    }

    /// Additive union (`⊎`): multiplicities add.
    pub fn additive_union(&self, other: &ValueBag) -> ValueBag {
        let mut out = self.clone();
        for (v, n) in other.iter() {
            out.insert_n(v.clone(), n);
        }
        out
    }

    /// Collapse to the underlying set (duplicate elimination).
    pub fn support(&self) -> crate::value::ValueSet {
        self.0.keys().cloned().collect()
    }
}

impl FromIterator<Value> for ValueBag {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        let mut bag = ValueBag::new();
        for v in iter {
            bag.insert(v);
        }
        bag
    }
}

impl fmt::Display for ValueBag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{|")?;
        let mut first = true;
        for (v, n) in self.iter() {
            for _ in 0..n {
                if !first {
                    write!(f, ", ")?;
                }
                first = false;
                write!(f, "{v}")?;
            }
        }
        write!(f, "|}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplicities_accumulate() {
        let mut b = ValueBag::new();
        b.insert(Value::Int(1));
        b.insert(Value::Int(1));
        b.insert(Value::Int(2));
        assert_eq!(b.len(), 3);
        assert_eq!(b.distinct(), 2);
        assert_eq!(b.count(&Value::Int(1)), 2);
        assert_eq!(b.count(&Value::Int(3)), 0);
    }

    #[test]
    fn additive_union_adds() {
        let a: ValueBag = [Value::Int(1), Value::Int(2)].into_iter().collect();
        let b: ValueBag = [Value::Int(2), Value::Int(3)].into_iter().collect();
        let u = a.additive_union(&b);
        assert_eq!(u.len(), 4);
        assert_eq!(u.count(&Value::Int(2)), 2);
    }

    #[test]
    fn support_deduplicates() {
        let b: ValueBag = [Value::Int(1), Value::Int(1), Value::Int(2)]
            .into_iter()
            .collect();
        assert_eq!(b.support().len(), 2);
    }

    #[test]
    fn display_repeats_elements() {
        let b: ValueBag = [Value::Int(1), Value::Int(1)].into_iter().collect();
        assert_eq!(b.to_string(), "{|1, 1|}");
        assert_eq!(ValueBag::new().to_string(), "{||}");
    }

    #[test]
    fn insert_zero_is_noop() {
        let mut b = ValueBag::new();
        b.insert_n(Value::Int(5), 0);
        assert!(b.is_empty());
    }
}
