//! Ergonomic constructors for KOLA terms.
//!
//! These mirror the paper's notation so that queries in tests and examples
//! read close to the figures, e.g. the transformed query of Figure 1:
//!
//! ```
//! use kola::builder::*;
//! // iterate(Kp(T), city ∘ addr) ! P
//! let q = app(iterate(kp(true), o(prim("city"), prim("addr"))), ext("P"));
//! ```

use crate::term::{Func, Pred, Query};
use crate::value::Value;
use std::sync::Arc;

// ---- functions --------------------------------------------------------

/// `f ∘ g` — composition.
pub fn o(f: Func, g: Func) -> Func {
    Func::Compose(Box::new(f), Box::new(g))
}

/// Right-associated composition of a chain `f1 ∘ f2 ∘ … ∘ fn`.
/// Panics on an empty chain.
pub fn chain<I: IntoIterator<Item = Func>>(fs: I) -> Func {
    let mut items: Vec<Func> = fs.into_iter().collect();
    let last = items.pop().expect("chain of at least one function");
    items.into_iter().rev().fold(last, |acc, f| o(f, acc))
}

/// `⟨f, g⟩` — pairing former.
pub fn pairf(f: Func, g: Func) -> Func {
    Func::PairWith(Box::new(f), Box::new(g))
}

/// `f × g` — pairwise application former.
pub fn times(f: Func, g: Func) -> Func {
    Func::Times(Box::new(f), Box::new(g))
}

/// `Kf(x)` — constant function former. Accepts anything convertible to a
/// (closed) [`Query`]: a `Query`, a [`Value`], or an `i64`.
pub fn kf(x: impl Into<Query>) -> Func {
    Func::ConstF(Box::new(x.into()))
}

/// `Cf(f, x)` — function currying former.
pub fn cf(f: Func, x: impl Into<Query>) -> Func {
    Func::CurryF(Box::new(f), Box::new(x.into()))
}

/// `con(p, f, g)` — conditional former.
pub fn con(p: Pred, f: Func, g: Func) -> Func {
    Func::Cond(Box::new(p), Box::new(f), Box::new(g))
}

/// A schema primitive function (attribute), e.g. `prim("age")`.
pub fn prim(name: &str) -> Func {
    Func::Prim(Arc::from(name))
}

/// `iterate(p, f)` — set iteration former.
pub fn iterate(p: Pred, f: Func) -> Func {
    Func::Iterate(Box::new(p), Box::new(f))
}

/// `iter(p, f)` — environment-carrying iteration former.
pub fn iter(p: Pred, f: Func) -> Func {
    Func::Iter(Box::new(p), Box::new(f))
}

/// `join(p, f)` — join former.
pub fn join(p: Pred, f: Func) -> Func {
    Func::Join(Box::new(p), Box::new(f))
}

/// `nest(f, g)` — nesting former.
pub fn nest(f: Func, g: Func) -> Func {
    Func::Nest(Box::new(f), Box::new(g))
}

/// `unnest(f, g)` — unnesting former.
pub fn unnest(f: Func, g: Func) -> Func {
    Func::Unnest(Box::new(f), Box::new(g))
}

/// `id`.
pub fn id() -> Func {
    Func::Id
}

/// `π1`.
pub fn pi1() -> Func {
    Func::Pi1
}

/// `π2`.
pub fn pi2() -> Func {
    Func::Pi2
}

/// `flat`.
pub fn flat() -> Func {
    Func::Flat
}

/// `bagify` — set to bag injection (§6 extension).
pub fn bagify() -> Func {
    Func::Bagify
}

/// `dedup` — duplicate elimination, bag to set (§6 extension).
pub fn dedup() -> Func {
    Func::Dedup
}

/// `biterate(p, f)` — multiplicity-preserving bag iteration (§6).
pub fn biterate(p: Pred, f: Func) -> Func {
    Func::BIterate(Box::new(p), Box::new(f))
}

/// `bunion` — additive bag union (§6).
pub fn bunion() -> Func {
    Func::BUnion
}

/// `bflat` — bag flattening (§6).
pub fn bflat() -> Func {
    Func::BFlat
}

// ---- predicates --------------------------------------------------------

/// `Kp(b)` — constant predicate former.
pub fn kp(b: bool) -> Pred {
    Pred::ConstP(b)
}

/// `Cp(p, x)` — predicate currying former.
pub fn cp(p: Pred, x: impl Into<Query>) -> Pred {
    Pred::CurryP(Box::new(p), Box::new(x.into()))
}

/// `p ⊕ f` — predicate/function combination.
pub fn oplus(p: Pred, f: Func) -> Pred {
    Pred::Oplus(Box::new(p), Box::new(f))
}

/// `p & q` — conjunction.
pub fn and(p: Pred, q: Pred) -> Pred {
    Pred::And(Box::new(p), Box::new(q))
}

/// `p | q` — disjunction.
pub fn or(p: Pred, q: Pred) -> Pred {
    Pred::Or(Box::new(p), Box::new(q))
}

/// `~p` — complement.
pub fn not(p: Pred) -> Pred {
    Pred::Not(Box::new(p))
}

/// `inv(p)` — converse (the paper's `p⁻¹`).
pub fn inv(p: Pred) -> Pred {
    Pred::Conv(Box::new(p))
}

/// `eq`.
pub fn eq() -> Pred {
    Pred::Eq
}

/// `lt`.
pub fn lt() -> Pred {
    Pred::Lt
}

/// `leq`.
pub fn leq() -> Pred {
    Pred::Leq
}

/// `gt`.
pub fn gt() -> Pred {
    Pred::Gt
}

/// `geq`.
pub fn geq() -> Pred {
    Pred::Geq
}

/// `in` — set membership.
pub fn isin() -> Pred {
    Pred::In
}

/// A schema primitive predicate (boolean attribute used as a predicate).
pub fn primp(name: &str) -> Pred {
    Pred::PrimP(Arc::from(name))
}

impl From<Value> for Query {
    fn from(v: Value) -> Query {
        Query::Lit(v)
    }
}

impl From<i64> for Query {
    fn from(i: i64) -> Query {
        Query::Lit(Value::Int(i))
    }
}

// ---- queries -----------------------------------------------------------

/// `f ! q` — function application.
pub fn app(f: Func, q: Query) -> Query {
    Query::App(f, Box::new(q))
}

/// `p ? q` — predicate application.
pub fn test(p: Pred, q: Query) -> Query {
    Query::Test(p, Box::new(q))
}

/// A named extent, e.g. `ext("P")`.
pub fn ext(name: &str) -> Query {
    Query::Extent(Arc::from(name))
}

/// A literal value.
pub fn lit(v: Value) -> Query {
    Query::Lit(v)
}

/// An integer literal.
pub fn int(i: i64) -> Query {
    Query::Lit(Value::Int(i))
}

/// `[q1, q2]` — query-level pair formation.
pub fn pairq(a: Query, b: Query) -> Query {
    Query::PairQ(Box::new(a), Box::new(b))
}

/// Set union of two queries.
pub fn union(a: Query, b: Query) -> Query {
    Query::Union(Box::new(a), Box::new(b))
}

/// Set intersection of two queries.
pub fn intersect(a: Query, b: Query) -> Query {
    Query::Intersect(Box::new(a), Box::new(b))
}

/// Set difference of two queries.
pub fn diff(a: Query, b: Query) -> Query {
    Query::Diff(Box::new(a), Box::new(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_right_associates() {
        let c = chain([prim("a"), prim("b"), prim("c")]);
        assert_eq!(c, o(prim("a"), o(prim("b"), prim("c"))));
    }

    #[test]
    fn chain_single() {
        assert_eq!(chain([id()]), id());
    }

    #[test]
    #[should_panic]
    fn chain_empty_panics() {
        chain([]);
    }
}
