//! A tiny in-memory object store.
//!
//! KOLA's schema primitives (`age`, `addr`, …) dereference object attributes,
//! so evaluation needs a database: per-class object tables plus *named
//! extents* — the sets the paper calls `P` (all Persons) and `V` (all
//! Vehicles) that top-level queries range over.

use crate::schema::Schema;
use crate::value::{ClassId, ObjId, Sym, Value, ValueSet};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// An in-memory database: a schema, object tables and named extents.
#[derive(Debug, Clone)]
pub struct Db {
    schema: Schema,
    /// `tables[class][obj][attr]` = attribute value.
    tables: Vec<Vec<Vec<Value>>>,
    extents: BTreeMap<Sym, Value>,
}

/// Errors raised while populating or reading a database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// Object insertion supplied the wrong number of attribute values.
    ArityMismatch {
        /// The class being inserted into.
        class: ClassId,
        /// Attributes the class declares.
        expected: usize,
        /// Attributes actually supplied.
        got: usize,
    },
    /// A dangling [`ObjId`] was dereferenced.
    NoSuchObject(ObjId),
    /// An unknown extent name was referenced.
    NoSuchExtent(Sym),
    /// An unknown attribute name was referenced.
    NoSuchAttr(Sym),
    /// An attribute was applied to a non-object or to the wrong class.
    WrongClass {
        /// The attribute that was applied.
        attr: Sym,
        /// The shape of the offending value.
        value_kind: &'static str,
    },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::ArityMismatch {
                class,
                expected,
                got,
            } => {
                write!(f, "class {} expects {expected} attrs, got {got}", class.0)
            }
            DbError::NoSuchObject(o) => write!(f, "dangling object #{}.{}", o.class.0, o.idx),
            DbError::NoSuchExtent(e) => write!(f, "unknown extent {e}"),
            DbError::NoSuchAttr(a) => write!(f, "unknown attribute {a}"),
            DbError::WrongClass { attr, value_kind } => {
                write!(f, "attribute {attr} applied to {value_kind}")
            }
        }
    }
}

impl std::error::Error for DbError {}

impl Db {
    /// An empty database over `schema`.
    pub fn new(schema: Schema) -> Self {
        let tables = schema.classes().iter().map(|_| Vec::new()).collect();
        Db {
            schema,
            tables,
            extents: BTreeMap::new(),
        }
    }

    /// The database's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Insert an object of `class` with the given attribute values (in
    /// declaration order). Returns its id.
    pub fn insert(&mut self, class: ClassId, attrs: Vec<Value>) -> Result<ObjId, DbError> {
        let expected = self.schema.class(class).attrs.len();
        if attrs.len() != expected {
            return Err(DbError::ArityMismatch {
                class,
                expected,
                got: attrs.len(),
            });
        }
        let table = &mut self.tables[class.0 as usize];
        let id = ObjId {
            class,
            idx: table.len() as u32,
        };
        table.push(attrs);
        Ok(id)
    }

    /// Overwrite one attribute of an existing object (builder convenience for
    /// cyclic data such as `child`).
    pub fn set_attr(&mut self, obj: ObjId, attr: &str, v: Value) -> Result<(), DbError> {
        let (cid, pos, _) = self
            .schema
            .attr(attr)
            .ok_or_else(|| DbError::NoSuchAttr(Arc::from(attr)))?;
        if cid != obj.class {
            return Err(DbError::WrongClass {
                attr: Arc::from(attr),
                value_kind: "object of another class",
            });
        }
        let row = self.tables[obj.class.0 as usize]
            .get_mut(obj.idx as usize)
            .ok_or(DbError::NoSuchObject(obj))?;
        row[pos] = v;
        Ok(())
    }

    /// Read attribute `attr` of the object `v` refers to.
    pub fn get_attr(&self, v: &Value, attr: &str) -> Result<Value, DbError> {
        let (cid, pos, _) = self
            .schema
            .attr(attr)
            .ok_or_else(|| DbError::NoSuchAttr(Arc::from(attr)))?;
        let obj = match v {
            Value::Obj(o) if o.class == cid => *o,
            other => {
                return Err(DbError::WrongClass {
                    attr: Arc::from(attr),
                    value_kind: other.kind_name(),
                })
            }
        };
        let row = self.tables[obj.class.0 as usize]
            .get(obj.idx as usize)
            .ok_or(DbError::NoSuchObject(obj))?;
        Ok(row[pos].clone())
    }

    /// Number of objects stored for `class`.
    pub fn count(&self, class: ClassId) -> usize {
        self.tables[class.0 as usize].len()
    }

    /// The set of all objects of `class` (its implicit full extent).
    pub fn class_extent(&self, class: ClassId) -> Value {
        let set: ValueSet = (0..self.count(class) as u32)
            .map(|idx| Value::Obj(ObjId { class, idx }))
            .collect();
        Value::Set(set)
    }

    /// Bind a named extent (e.g. `P`) to a value (usually a set).
    pub fn bind_extent(&mut self, name: &str, v: Value) {
        self.extents.insert(Arc::from(name), v);
    }

    /// Look up a named extent.
    pub fn extent(&self, name: &str) -> Result<Value, DbError> {
        self.extents
            .get(name)
            .cloned()
            .ok_or_else(|| DbError::NoSuchExtent(Arc::from(name)))
    }

    /// Names of all bound extents, in order.
    pub fn extent_names(&self) -> impl Iterator<Item = &Sym> {
        self.extents.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Type;

    fn tiny_db() -> Db {
        let schema = Schema::paper_schema();
        let person = schema.class_id("Person").unwrap();
        let address = schema.class_id("Address").unwrap();
        let mut db = Db::new(schema);
        let a0 = db
            .insert(address, vec![Value::str("Boston"), Value::Int(2912)])
            .unwrap();
        let p0 = db
            .insert(
                person,
                vec![
                    Value::Obj(a0),
                    Value::Int(40),
                    Value::str("Ada"),
                    Value::empty_set(),
                    Value::empty_set(),
                    Value::empty_set(),
                ],
            )
            .unwrap();
        db.bind_extent("P", Value::set([Value::Obj(p0)]));
        db
    }

    #[test]
    fn attribute_read() {
        let db = tiny_db();
        let p = match db.extent("P").unwrap() {
            Value::Set(s) => s.iter().next().cloned().unwrap(),
            _ => unreachable!(),
        };
        assert_eq!(db.get_attr(&p, "age").unwrap(), Value::Int(40));
        let addr = db.get_attr(&p, "addr").unwrap();
        assert_eq!(db.get_attr(&addr, "city").unwrap(), Value::str("Boston"));
    }

    #[test]
    fn wrong_class_errors() {
        let db = tiny_db();
        let p = match db.extent("P").unwrap() {
            Value::Set(s) => s.iter().next().cloned().unwrap(),
            _ => unreachable!(),
        };
        // `city` is an Address attribute; applying it to a Person fails.
        assert!(matches!(
            db.get_attr(&p, "city"),
            Err(DbError::WrongClass { .. })
        ));
        assert!(matches!(
            db.get_attr(&Value::Int(3), "age"),
            Err(DbError::WrongClass { .. })
        ));
    }

    #[test]
    fn arity_checked_on_insert() {
        let mut s = Schema::new();
        let c = s.add_class("C", vec![("f", Type::Int)]).unwrap();
        let mut db = Db::new(s);
        assert!(matches!(
            db.insert(c, vec![]),
            Err(DbError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn extents() {
        let db = tiny_db();
        assert!(db.extent("P").is_ok());
        assert!(matches!(db.extent("Q"), Err(DbError::NoSuchExtent(_))));
    }

    #[test]
    fn set_attr_updates() {
        let mut db = tiny_db();
        let person = db.schema().class_id("Person").unwrap();
        let p = ObjId {
            class: person,
            idx: 0,
        };
        db.set_attr(p, "age", Value::Int(41)).unwrap();
        assert_eq!(db.get_attr(&Value::Obj(p), "age").unwrap(), Value::Int(41));
    }

    #[test]
    fn class_extent_enumerates() {
        let db = tiny_db();
        let person = db.schema().class_id("Person").unwrap();
        match db.class_extent(person) {
            Value::Set(s) => assert_eq!(s.len(), 1),
            _ => panic!(),
        }
    }
}
