//! Pretty printing in the concrete KOLA syntax.
//!
//! The output is paper-flavoured ASCII that the parser in [`crate::parse`]
//! accepts back, so `parse(print(t)) == t` for functions and predicates
//! (queries round-trip semantically; see `parse` docs).
//!
//! Operator syntax:
//!
//! | paper | printed |
//! |-------|---------|
//! | `f ∘ g` | `f . g` |
//! | `⟨f, g⟩` | `(f, g)` |
//! | `f × g` | `f * g` |
//! | `p ⊕ f` | `p @ f` |
//! | `p⁻¹` | `~p` |
//! | `Kp(T)` | `Kp(T)` |
//! | `f ! x`, `p ? x` | `f ! x`, `p ? x` |

use crate::pattern::{PFunc, PPred, PQuery};
use crate::term::{Func, Pred, Query};
use std::fmt;

// Precedence levels. Higher binds tighter.
const FUNC_COMPOSE: u8 = 0;
const FUNC_TIMES: u8 = 1;
const FUNC_ATOM: u8 = 2;

const PRED_OR: u8 = 0;
const PRED_AND: u8 = 1;
const PRED_OPLUS: u8 = 2;
const PRED_NOT: u8 = 3;

fn parens(
    f: &mut fmt::Formatter<'_>,
    needed: bool,
    inner: impl FnOnce(&mut fmt::Formatter<'_>) -> fmt::Result,
) -> fmt::Result {
    if needed {
        write!(f, "(")?;
        inner(f)?;
        write!(f, ")")
    } else {
        inner(f)
    }
}

fn fmt_pfunc(t: &PFunc, prec: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match t {
        PFunc::Var(v) => write!(f, "${v}"),
        PFunc::Id => write!(f, "id"),
        PFunc::Pi1 => write!(f, "pi1"),
        PFunc::Pi2 => write!(f, "pi2"),
        PFunc::Prim(s) => write!(f, "{s}"),
        PFunc::Flat => write!(f, "flat"),
        PFunc::Bagify => write!(f, "bagify"),
        PFunc::Dedup => write!(f, "dedup"),
        PFunc::BUnion => write!(f, "bunion"),
        PFunc::BFlat => write!(f, "bflat"),
        PFunc::SetUnion => write!(f, "sunion"),
        PFunc::SetIntersect => write!(f, "sinter"),
        PFunc::SetDiff => write!(f, "sdiff"),
        PFunc::Compose(a, b) => parens(f, prec > FUNC_COMPOSE, |f| {
            fmt_pfunc(a, FUNC_TIMES, f)?;
            write!(f, " . ")?;
            fmt_pfunc(b, FUNC_COMPOSE, f)
        }),
        PFunc::Times(a, b) => parens(f, prec > FUNC_TIMES, |f| {
            fmt_pfunc(a, FUNC_TIMES, f)?;
            write!(f, " * ")?;
            fmt_pfunc(b, FUNC_ATOM, f)
        }),
        PFunc::PairWith(a, b) => {
            write!(f, "(")?;
            fmt_pfunc(a, FUNC_COMPOSE, f)?;
            write!(f, ", ")?;
            fmt_pfunc(b, FUNC_COMPOSE, f)?;
            write!(f, ")")
        }
        PFunc::ConstF(q) => {
            write!(f, "Kf(")?;
            fmt_pquery(q, f)?;
            write!(f, ")")
        }
        PFunc::CurryF(g, q) => {
            write!(f, "Cf(")?;
            fmt_pfunc(g, FUNC_COMPOSE, f)?;
            write!(f, ", ")?;
            fmt_pquery(q, f)?;
            write!(f, ")")
        }
        PFunc::Cond(p, g, h) => {
            write!(f, "con(")?;
            fmt_ppred(p, PRED_OR, f)?;
            write!(f, ", ")?;
            fmt_pfunc(g, FUNC_COMPOSE, f)?;
            write!(f, ", ")?;
            fmt_pfunc(h, FUNC_COMPOSE, f)?;
            write!(f, ")")
        }
        PFunc::Iterate(p, g) => {
            write!(f, "iterate(")?;
            fmt_ppred(p, PRED_OR, f)?;
            write!(f, ", ")?;
            fmt_pfunc(g, FUNC_COMPOSE, f)?;
            write!(f, ")")
        }
        PFunc::BIterate(p, g) => {
            write!(f, "biterate(")?;
            fmt_ppred(p, PRED_OR, f)?;
            write!(f, ", ")?;
            fmt_pfunc(g, FUNC_COMPOSE, f)?;
            write!(f, ")")
        }
        PFunc::Iter(p, g) => {
            write!(f, "iter(")?;
            fmt_ppred(p, PRED_OR, f)?;
            write!(f, ", ")?;
            fmt_pfunc(g, FUNC_COMPOSE, f)?;
            write!(f, ")")
        }
        PFunc::Join(p, g) => {
            write!(f, "join(")?;
            fmt_ppred(p, PRED_OR, f)?;
            write!(f, ", ")?;
            fmt_pfunc(g, FUNC_COMPOSE, f)?;
            write!(f, ")")
        }
        PFunc::Nest(g, h) => {
            write!(f, "nest(")?;
            fmt_pfunc(g, FUNC_COMPOSE, f)?;
            write!(f, ", ")?;
            fmt_pfunc(h, FUNC_COMPOSE, f)?;
            write!(f, ")")
        }
        PFunc::Unnest(g, h) => {
            write!(f, "unnest(")?;
            fmt_pfunc(g, FUNC_COMPOSE, f)?;
            write!(f, ", ")?;
            fmt_pfunc(h, FUNC_COMPOSE, f)?;
            write!(f, ")")
        }
    }
}

fn fmt_ppred(t: &PPred, prec: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match t {
        PPred::Var(v) => write!(f, "%{v}"),
        PPred::Eq => write!(f, "eq"),
        PPred::Lt => write!(f, "lt"),
        PPred::Leq => write!(f, "leq"),
        PPred::Gt => write!(f, "gt"),
        PPred::Geq => write!(f, "geq"),
        PPred::In => write!(f, "in"),
        PPred::PrimP(s) => write!(f, "{s}"),
        PPred::ConstP(b) => write!(f, "Kp({})", if *b { "T" } else { "F" }),
        PPred::CurryP(p, q) => {
            write!(f, "Cp(")?;
            fmt_ppred(p, PRED_OR, f)?;
            write!(f, ", ")?;
            fmt_pquery(q, f)?;
            write!(f, ")")
        }
        PPred::Or(p, q) => parens(f, prec > PRED_OR, |f| {
            fmt_ppred(p, PRED_AND, f)?;
            write!(f, " | ")?;
            fmt_ppred(q, PRED_OR, f)
        }),
        PPred::And(p, q) => parens(f, prec > PRED_AND, |f| {
            fmt_ppred(p, PRED_OPLUS, f)?;
            write!(f, " & ")?;
            fmt_ppred(q, PRED_AND, f)
        }),
        PPred::Oplus(p, g) => parens(f, prec > PRED_OPLUS, |f| {
            fmt_ppred(p, PRED_NOT, f)?;
            write!(f, " @ ")?;
            fmt_pfunc(g, FUNC_TIMES, f)
        }),
        PPred::Not(p) => parens(f, prec > PRED_NOT, |f| {
            write!(f, "~")?;
            fmt_ppred(p, PRED_NOT, f)
        }),
        PPred::Conv(p) => {
            write!(f, "inv(")?;
            fmt_ppred(p, PRED_OR, f)?;
            write!(f, ")")
        }
    }
}

fn fmt_pquery(t: &PQuery, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    // Queries print fully at "set-op" level; application is right-nested.
    match t {
        PQuery::Var(v) => write!(f, "^{v}"),
        PQuery::Lit(v) => write!(f, "{v}"),
        PQuery::Extent(s) => write!(f, "{s}"),
        PQuery::PairQ(a, b) => {
            write!(f, "[")?;
            fmt_pquery(a, f)?;
            write!(f, ", ")?;
            fmt_pquery(b, f)?;
            write!(f, "]")
        }
        PQuery::App(func, q) => {
            fmt_pfunc(func, FUNC_COMPOSE, f)?;
            write!(f, " ! ")?;
            fmt_pquery_app_operand(q, f)
        }
        PQuery::Test(p, q) => {
            fmt_ppred(p, PRED_OR, f)?;
            write!(f, " ? ")?;
            fmt_pquery_app_operand(q, f)
        }
        PQuery::Union(a, b) => {
            fmt_pquery_app_operand(a, f)?;
            write!(f, " union ")?;
            fmt_pquery_app_operand(b, f)
        }
        PQuery::Intersect(a, b) => {
            fmt_pquery_app_operand(a, f)?;
            write!(f, " intersect ")?;
            fmt_pquery_app_operand(b, f)
        }
        PQuery::Diff(a, b) => {
            fmt_pquery_app_operand(a, f)?;
            write!(f, " diff ")?;
            fmt_pquery_app_operand(b, f)
        }
    }
}

/// Operand of `!`/`?`/set ops: parenthesize anything that is itself a set op
/// so the (left-associative) parse is unambiguous.
fn fmt_pquery_app_operand(t: &PQuery, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match t {
        PQuery::Union(..) | PQuery::Intersect(..) | PQuery::Diff(..) => {
            write!(f, "(")?;
            fmt_pquery(t, f)?;
            write!(f, ")")
        }
        _ => fmt_pquery(t, f),
    }
}

impl fmt::Display for PFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_pfunc(self, FUNC_COMPOSE, f)
    }
}

impl fmt::Display for PPred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ppred(self, PRED_OR, f)
    }
}

impl fmt::Display for PQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_pquery(self, f)
    }
}

impl fmt::Display for Func {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::pattern::PFunc::from_concrete(self).fmt(f)
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::pattern::PPred::from_concrete(self).fmt(f)
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::pattern::PQuery::from_concrete(self).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::*;
    use crate::value::Value;

    #[test]
    fn paper_notation() {
        let q = app(iterate(kp(true), o(prim("city"), prim("addr"))), ext("P"));
        assert_eq!(q.to_string(), "iterate(Kp(T), city . addr) ! P");
    }

    #[test]
    fn compose_right_assoc_minimal_parens() {
        let f = o(prim("a"), o(prim("b"), prim("c")));
        assert_eq!(f.to_string(), "a . b . c");
        let g = o(o(prim("a"), prim("b")), prim("c"));
        assert_eq!(g.to_string(), "(a . b) . c");
    }

    #[test]
    fn times_binds_tighter_than_compose() {
        let f = o(times(prim("a"), prim("b")), prim("c"));
        assert_eq!(f.to_string(), "a * b . c");
        let g = times(prim("a"), o(prim("b"), prim("c")));
        assert_eq!(g.to_string(), "a * (b . c)");
    }

    #[test]
    fn pred_notation() {
        let p = and(
            oplus(gt(), pairf(prim("age"), kf(Value::Int(25)))),
            kp(true),
        );
        assert_eq!(p.to_string(), "gt @ (age, Kf(25)) & Kp(T)");
        let q = not(oplus(leq(), pi1()));
        assert_eq!(q.to_string(), "~(leq @ pi1)");
        let r = oplus(not(leq()), pi1());
        assert_eq!(r.to_string(), "~leq @ pi1");
    }

    #[test]
    fn query_pairs_and_setops() {
        let q = union(pairq(int(1), int(2)), ext("P"));
        assert_eq!(q.to_string(), "[1, 2] union P");
        let nested = intersect(union(ext("A"), ext("B")), ext("C"));
        assert_eq!(nested.to_string(), "(A union B) intersect C");
    }

    #[test]
    fn garage_query_kg2_prints() {
        // KG2 of Figure 3.
        let kg2 = app(
            chain([
                nest(pi1(), pi2()),
                times(unnest(pi1(), pi2()), id()),
                pairf(
                    join(
                        oplus(isin(), times(id(), prim("cars"))),
                        times(id(), prim("grgs")),
                    ),
                    pi1(),
                ),
            ]),
            pairq(ext("V"), ext("P")),
        );
        assert_eq!(
            kg2.to_string(),
            "nest(pi1, pi2) . unnest(pi1, pi2) * id . \
             (join(in @ id * cars, id * grgs), pi1) ! [V, P]"
        );
    }
}
