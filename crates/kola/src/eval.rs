//! Operational semantics of KOLA (Tables 1 and 2 of the paper).
//!
//! [`eval_func`] implements invocation `f ! x`, [`eval_pred`] implements
//! `p ? x`, and [`eval_query`] evaluates an object-level [`Query`] against a
//! [`Db`]. Evaluation is deterministic: sets are canonical
//! ([`crate::value::ValueSet`]), so `eval(q1) == eval(q2)` is a decision
//! procedure for "these two queries agree on this database" — which is how
//! every transformation in this repository is checked.

use crate::db::{Db, DbError};
use crate::term::{Func, Pred, Query};
use crate::value::{Value, ValueSet};
use std::fmt;

/// Errors raised during evaluation: "stuck" terms (ill-typed applications)
/// or database faults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A combinator was applied to a value of the wrong shape.
    Stuck {
        /// Which combinator got stuck.
        what: &'static str,
        /// The shape of the offending argument.
        got: &'static str,
    },
    /// A database fault (unknown attribute/extent, dangling object, …).
    Db(DbError),
    /// The term nests deeper than the evaluator's recursion guard allows.
    /// Returned instead of overflowing the native stack on adversarially
    /// deep terms — a structured error the caller can degrade on.
    DepthExceeded {
        /// The configured recursion limit.
        limit: usize,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Stuck { what, got } => write!(f, "{what} applied to {got}"),
            EvalError::Db(e) => write!(f, "db error: {e}"),
            EvalError::DepthExceeded { limit } => {
                write!(f, "term exceeds evaluation depth limit {limit}")
            }
        }
    }
}

impl std::error::Error for EvalError {}

impl From<DbError> for EvalError {
    fn from(e: DbError) -> Self {
        EvalError::Db(e)
    }
}

/// Shorthand result type for evaluation.
pub type EvalResult<T = Value> = Result<T, EvalError>;

/// Default recursion-depth guard for the evaluators — far above any
/// legitimate query (paper derivations nest < 50 levels). Depth alone is
/// not enough, though: evaluator stack frames vary by an order of
/// magnitude between release (~1 KB) and debug (~16 KB) builds, so the
/// guard pairs this structural cap with [`EVAL_STACK_BUDGET`], a bound on
/// *actual* native-stack consumption. Whichever trips first yields
/// [`EvalError::DepthExceeded`].
pub const MAX_EVAL_DEPTH: usize = 192;

/// Native-stack budget (bytes) for one evaluation, measured from the entry
/// point. Sized so evaluation never overflows the 2 MiB default stack of a
/// spawned thread, with headroom for the caller and error propagation.
pub const EVAL_STACK_BUDGET: usize = 1_280 * 1024;

/// Current native-stack position. Pair with [`stack_exhausted`] to bound
/// recursion by measured consumption rather than guessed frame sizes.
/// (Exposed for the `kola-exec` executor, which has the same shape of
/// recursion; not part of the stable API.)
#[doc(hidden)]
#[inline(never)]
pub fn stack_mark() -> usize {
    let probe = 0u8;
    std::hint::black_box(&probe as *const u8 as usize)
}

/// True when the stack has grown more than [`EVAL_STACK_BUDGET`] bytes past
/// `base` (a prior [`stack_mark`]). Stacks grow downward on every platform
/// this crate targets.
#[doc(hidden)]
#[inline]
pub fn stack_exhausted(base: usize) -> bool {
    base.saturating_sub(stack_mark()) > EVAL_STACK_BUDGET
}

#[inline]
fn guard(d: usize, limit: usize, base: usize) -> EvalResult<()> {
    if d >= limit || stack_exhausted(base) {
        Err(EvalError::DepthExceeded { limit })
    } else {
        Ok(())
    }
}

fn stuck<T>(what: &'static str, v: &Value) -> EvalResult<T> {
    Err(EvalError::Stuck {
        what,
        got: v.kind_name(),
    })
}

fn as_pair_owned(what: &'static str, v: Value) -> EvalResult<(Value, Value)> {
    match v {
        Value::Pair(p) => Ok(*p),
        other => stuck(what, &other),
    }
}

fn as_set<'a>(what: &'static str, v: &'a Value) -> EvalResult<&'a ValueSet> {
    match v {
        Value::Set(s) => Ok(s),
        other => stuck(what, other),
    }
}

fn cmp_ints(what: &'static str, v: &Value) -> EvalResult<(i64, i64)> {
    match v {
        Value::Pair(p) => match (&p.0, &p.1) {
            (Value::Int(a), Value::Int(b)) => Ok((*a, *b)),
            _ => stuck(what, v),
        },
        other => stuck(what, other),
    }
}

/// Invoke a KOLA function: `f ! x` (Table 1 and Table 2 of the paper).
/// Guarded by [`MAX_EVAL_DEPTH`]; see [`eval_func_depth`] for a custom cap.
pub fn eval_func(db: &Db, f: &Func, x: &Value) -> EvalResult {
    func_at(db, f, x, 0, MAX_EVAL_DEPTH, stack_mark())
}

/// [`eval_func`] with an explicit recursion-depth cap.
pub fn eval_func_depth(db: &Db, f: &Func, x: &Value, limit: usize) -> EvalResult {
    func_at(db, f, x, 0, limit, stack_mark())
}

fn func_at(db: &Db, f: &Func, x: &Value, d: usize, limit: usize, base: usize) -> EvalResult {
    guard(d, limit, base)?;
    match f {
        // --- Table 1: basic combinators ---
        Func::Id => Ok(x.clone()),
        Func::Pi1 => match x {
            Value::Pair(p) => Ok(p.0.clone()),
            other => stuck("pi1", other),
        },
        Func::Pi2 => match x {
            Value::Pair(p) => Ok(p.1.clone()),
            other => stuck("pi2", other),
        },
        Func::Prim(name) => Ok(db.get_attr(x, name)?),
        Func::Compose(f, g) => {
            let mid = func_at(db, g, x, d + 1, limit, base)?;
            func_at(db, f, &mid, d + 1, limit, base)
        }
        Func::PairWith(f, g) => Ok(Value::pair(
            func_at(db, f, x, d + 1, limit, base)?,
            func_at(db, g, x, d + 1, limit, base)?,
        )),
        Func::Times(f, g) => {
            let (a, b) = as_pair_owned("times", x.clone())?;
            Ok(Value::pair(
                func_at(db, f, &a, d + 1, limit, base)?,
                func_at(db, g, &b, d + 1, limit, base)?,
            ))
        }
        Func::ConstF(q) => query_at(db, q, d + 1, limit, base),
        Func::CurryF(f, q) => {
            let arg = Value::pair(query_at(db, q, d + 1, limit, base)?, x.clone());
            func_at(db, f, &arg, d + 1, limit, base)
        }
        Func::Cond(p, f, g) => {
            if pred_at(db, p, x, d + 1, limit, base)? {
                func_at(db, f, x, d + 1, limit, base)
            } else {
                func_at(db, g, x, d + 1, limit, base)
            }
        }

        // --- Table 2: query combinators ---
        Func::Flat => {
            let outer = as_set("flat", x)?;
            let mut out = ValueSet::new();
            for inner in outer.iter() {
                let inner = as_set("flat (element)", inner)?;
                for v in inner.iter() {
                    out.insert(v.clone());
                }
            }
            Ok(Value::Set(out))
        }
        Func::Iterate(p, f) => {
            let set = as_set("iterate", x)?;
            let mut out = ValueSet::new();
            for v in set.iter() {
                if pred_at(db, p, v, d + 1, limit, base)? {
                    out.insert(func_at(db, f, v, d + 1, limit, base)?);
                }
            }
            Ok(Value::Set(out))
        }
        Func::Iter(p, f) => {
            // iter(p, f) ! [e, B] = { f![e, y] | y ∈ B, p?[e, y] }
            let (e, b) = as_pair_owned("iter", x.clone())?;
            let set = as_set("iter (second component)", &b)?;
            let mut out = ValueSet::new();
            for y in set.iter() {
                let pair = Value::pair(e.clone(), y.clone());
                if pred_at(db, p, &pair, d + 1, limit, base)? {
                    out.insert(func_at(db, f, &pair, d + 1, limit, base)?);
                }
            }
            Ok(Value::Set(out))
        }
        Func::Join(p, f) => {
            let (a, b) = as_pair_owned("join", x.clone())?;
            let aset = as_set("join (first component)", &a)?;
            let bset = as_set("join (second component)", &b)?;
            let mut out = ValueSet::new();
            for x in aset.iter() {
                for y in bset.iter() {
                    let pair = Value::pair(x.clone(), y.clone());
                    if pred_at(db, p, &pair, d + 1, limit, base)? {
                        out.insert(func_at(db, f, &pair, d + 1, limit, base)?);
                    }
                }
            }
            Ok(Value::Set(out))
        }
        Func::Nest(f, g) => {
            // nest(f, g) ! [A, B] = { [y, {g!x | x ∈ A, f!x = y}] | y ∈ B }
            let (a, b) = as_pair_owned("nest", x.clone())?;
            let aset = as_set("nest (first component)", &a)?;
            let bset = as_set("nest (second component)", &b)?;
            let mut out = ValueSet::new();
            for y in bset.iter() {
                let mut group = ValueSet::new();
                for x in aset.iter() {
                    if &func_at(db, f, x, d + 1, limit, base)? == y {
                        group.insert(func_at(db, g, x, d + 1, limit, base)?);
                    }
                }
                out.insert(Value::pair(y.clone(), Value::Set(group)));
            }
            Ok(Value::Set(out))
        }
        Func::Unnest(f, g) => {
            // unnest(f, g) ! A = { [f!x, y] | x ∈ A, y ∈ g!x }
            let set = as_set("unnest", x)?;
            let mut out = ValueSet::new();
            for v in set.iter() {
                let key = func_at(db, f, v, d + 1, limit, base)?;
                let inner = func_at(db, g, v, d + 1, limit, base)?;
                let inner = as_set("unnest (g result)", &inner)?;
                for y in inner.iter() {
                    out.insert(Value::pair(key.clone(), y.clone()));
                }
            }
            Ok(Value::Set(out))
        }
        Func::Bagify => {
            let set = as_set("bagify", x)?;
            let mut bag = crate::bag::ValueBag::new();
            for v in set.iter() {
                bag.insert(v.clone());
            }
            Ok(Value::Bag(bag))
        }
        Func::Dedup => match x {
            Value::Bag(b) => Ok(Value::Set(b.support())),
            other => stuck("dedup", other),
        },
        Func::BIterate(p, f) => {
            let Value::Bag(bag) = x else {
                return stuck("biterate", x);
            };
            let mut out = crate::bag::ValueBag::new();
            for (v, n) in bag.iter() {
                if pred_at(db, p, v, d + 1, limit, base)? {
                    out.insert_n(func_at(db, f, v, d + 1, limit, base)?, n);
                }
            }
            Ok(Value::Bag(out))
        }
        Func::BUnion => {
            let (a, b) = as_pair_owned("bunion", x.clone())?;
            match (a, b) {
                (Value::Bag(a), Value::Bag(b)) => Ok(Value::Bag(a.additive_union(&b))),
                (a, _) => stuck("bunion", &a),
            }
        }
        Func::BFlat => {
            let Value::Bag(outer) = x else {
                return stuck("bflat", x);
            };
            let mut out = crate::bag::ValueBag::new();
            for (inner, n) in outer.iter() {
                let Value::Bag(inner) = inner else {
                    return stuck("bflat (element)", inner);
                };
                for (v, m) in inner.iter() {
                    out.insert_n(v.clone(), n * m);
                }
            }
            Ok(Value::Bag(out))
        }
        Func::SetUnion => {
            let (a, b) = as_pair_owned("union", x.clone())?;
            Ok(Value::Set(as_set("union", &a)?.union(as_set("union", &b)?)))
        }
        Func::SetIntersect => {
            let (a, b) = as_pair_owned("intersect", x.clone())?;
            Ok(Value::Set(
                as_set("intersect", &a)?.intersect(as_set("intersect", &b)?),
            ))
        }
        Func::SetDiff => {
            let (a, b) = as_pair_owned("diff", x.clone())?;
            Ok(Value::Set(
                as_set("diff", &a)?.difference(as_set("diff", &b)?),
            ))
        }
    }
}

/// Invoke a KOLA predicate: `p ? x` (Table 1 of the paper).
/// Guarded by [`MAX_EVAL_DEPTH`]; see [`eval_pred_depth`] for a custom cap.
pub fn eval_pred(db: &Db, p: &Pred, x: &Value) -> EvalResult<bool> {
    pred_at(db, p, x, 0, MAX_EVAL_DEPTH, stack_mark())
}

/// [`eval_pred`] with an explicit recursion-depth cap.
pub fn eval_pred_depth(db: &Db, p: &Pred, x: &Value, limit: usize) -> EvalResult<bool> {
    pred_at(db, p, x, 0, limit, stack_mark())
}

fn pred_at(db: &Db, p: &Pred, x: &Value, d: usize, limit: usize, base: usize) -> EvalResult<bool> {
    guard(d, limit, base)?;
    match p {
        Pred::Eq => {
            let (a, b) = as_pair_owned("eq", x.clone())?;
            Ok(a == b)
        }
        Pred::Lt => cmp_ints("lt", x).map(|(a, b)| a < b),
        Pred::Leq => cmp_ints("leq", x).map(|(a, b)| a <= b),
        Pred::Gt => cmp_ints("gt", x).map(|(a, b)| a > b),
        Pred::Geq => cmp_ints("geq", x).map(|(a, b)| a >= b),
        Pred::In => {
            let (a, b) = as_pair_owned("in", x.clone())?;
            Ok(as_set("in (second component)", &b)?.contains(&a))
        }
        Pred::PrimP(name) => match db.get_attr(x, name)? {
            Value::Bool(b) => Ok(b),
            other => stuck("primitive predicate", &other),
        },
        Pred::Oplus(p, f) => {
            let mid = func_at(db, f, x, d + 1, limit, base)?;
            pred_at(db, p, &mid, d + 1, limit, base)
        }
        Pred::And(p, q) => {
            Ok(pred_at(db, p, x, d + 1, limit, base)? && pred_at(db, q, x, d + 1, limit, base)?)
        }
        Pred::Or(p, q) => {
            Ok(pred_at(db, p, x, d + 1, limit, base)? || pred_at(db, q, x, d + 1, limit, base)?)
        }
        Pred::Not(p) => Ok(!pred_at(db, p, x, d + 1, limit, base)?),
        Pred::Conv(p) => {
            let (a, b) = as_pair_owned("inv", x.clone())?;
            let swapped = Value::pair(b, a);
            pred_at(db, p, &swapped, d + 1, limit, base)
        }
        Pred::ConstP(b) => Ok(*b),
        Pred::CurryP(p, q) => {
            let arg = Value::pair(query_at(db, q, d + 1, limit, base)?, x.clone());
            pred_at(db, p, &arg, d + 1, limit, base)
        }
    }
}

/// Evaluate an object-level [`Query`] against a database.
///
/// ```
/// use kola::{Db, Schema, Value};
/// let mut db = Db::new(Schema::paper_schema());
/// db.bind_extent("S", Value::set([Value::Int(1), Value::Int(30)]));
/// let q = kola::parse::parse_query(
///     "iterate(gt @ (id, Kf(25)), id) ! S").unwrap();
/// assert_eq!(
///     kola::eval_query(&db, &q).unwrap(),
///     Value::set([Value::Int(30)]),
/// );
/// ```
pub fn eval_query(db: &Db, q: &Query) -> EvalResult {
    query_at(db, q, 0, MAX_EVAL_DEPTH, stack_mark())
}

/// [`eval_query`] with an explicit recursion-depth cap.
pub fn eval_query_depth(db: &Db, q: &Query, limit: usize) -> EvalResult {
    query_at(db, q, 0, limit, stack_mark())
}

fn query_at(db: &Db, q: &Query, d: usize, limit: usize, base: usize) -> EvalResult {
    guard(d, limit, base)?;
    match q {
        Query::Lit(v) => Ok(v.clone()),
        Query::Extent(name) => Ok(db.extent(name)?),
        Query::PairQ(a, b) => Ok(Value::pair(
            query_at(db, a, d + 1, limit, base)?,
            query_at(db, b, d + 1, limit, base)?,
        )),
        Query::App(f, q) => {
            let arg = query_at(db, q, d + 1, limit, base)?;
            func_at(db, f, &arg, d + 1, limit, base)
        }
        Query::Test(p, q) => {
            let arg = query_at(db, q, d + 1, limit, base)?;
            Ok(Value::Bool(pred_at(db, p, &arg, d + 1, limit, base)?))
        }
        Query::Union(a, b) => {
            let a = query_at(db, a, d + 1, limit, base)?;
            let b = query_at(db, b, d + 1, limit, base)?;
            Ok(Value::Set(as_set("union", &a)?.union(as_set("union", &b)?)))
        }
        Query::Intersect(a, b) => {
            let a = query_at(db, a, d + 1, limit, base)?;
            let b = query_at(db, b, d + 1, limit, base)?;
            Ok(Value::Set(
                as_set("intersect", &a)?.intersect(as_set("intersect", &b)?),
            ))
        }
        Query::Diff(a, b) => {
            let a = query_at(db, a, d + 1, limit, base)?;
            let b = query_at(db, b, d + 1, limit, base)?;
            Ok(Value::Set(
                as_set("diff", &a)?.difference(as_set("diff", &b)?),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::schema::Schema;

    fn db() -> Db {
        Db::new(Schema::paper_schema())
    }

    fn iset(items: impl IntoIterator<Item = i64>) -> Value {
        Value::set(items.into_iter().map(Value::Int))
    }

    // --- Table 1 semantics, one test per row ---

    #[test]
    fn t1_id() {
        assert_eq!(
            eval_func(&db(), &id(), &Value::Int(7)).unwrap(),
            Value::Int(7)
        );
    }

    #[test]
    fn t1_projections() {
        let d = db();
        let p = Value::pair(Value::Int(1), Value::Int(2));
        assert_eq!(eval_func(&d, &pi1(), &p).unwrap(), Value::Int(1));
        assert_eq!(eval_func(&d, &pi2(), &p).unwrap(), Value::Int(2));
        assert!(eval_func(&d, &pi1(), &Value::Int(1)).is_err());
    }

    #[test]
    fn t1_eq_leq_gt() {
        let d = db();
        let p = |a, b| Value::pair(Value::Int(a), Value::Int(b));
        assert!(eval_pred(&d, &eq(), &p(3, 3)).unwrap());
        assert!(!eval_pred(&d, &eq(), &p(3, 4)).unwrap());
        assert!(eval_pred(&d, &leq(), &p(3, 3)).unwrap());
        assert!(eval_pred(&d, &leq(), &p(2, 3)).unwrap());
        assert!(!eval_pred(&d, &gt(), &p(3, 3)).unwrap());
        assert!(eval_pred(&d, &gt(), &p(4, 3)).unwrap());
        assert!(eval_pred(&d, &lt(), &p(2, 3)).unwrap());
        assert!(eval_pred(&d, &geq(), &p(3, 3)).unwrap());
    }

    #[test]
    fn t1_in() {
        let d = db();
        let arg = Value::pair(Value::Int(2), iset([1, 2, 3]));
        assert!(eval_pred(&d, &isin(), &arg).unwrap());
        let arg = Value::pair(Value::Int(9), iset([1, 2, 3]));
        assert!(!eval_pred(&d, &isin(), &arg).unwrap());
    }

    #[test]
    fn t1_compose() {
        // (π1 ∘ π2) ! [a, [b, c]] = b
        let d = db();
        let f = o(pi1(), pi2());
        let v = Value::pair(Value::Int(1), Value::pair(Value::Int(2), Value::Int(3)));
        assert_eq!(eval_func(&d, &f, &v).unwrap(), Value::Int(2));
    }

    #[test]
    fn t1_pairing() {
        // ⟨f, g⟩ ! x = [f!x, g!x]
        let d = db();
        let f = pairf(id(), id());
        assert_eq!(
            eval_func(&d, &f, &Value::Int(5)).unwrap(),
            Value::pair(Value::Int(5), Value::Int(5))
        );
    }

    #[test]
    fn t1_times() {
        // (f × g) ! [x, y] = [f!x, g!y]
        let d = db();
        let f = times(kf(Value::Int(0)), id());
        let v = Value::pair(Value::Int(1), Value::Int(2));
        assert_eq!(
            eval_func(&d, &f, &v).unwrap(),
            Value::pair(Value::Int(0), Value::Int(2))
        );
    }

    #[test]
    fn t1_const_func() {
        let d = db();
        assert_eq!(
            eval_func(&d, &kf(Value::str("c")), &Value::Int(9)).unwrap(),
            Value::str("c")
        );
    }

    #[test]
    fn t1_curry_func() {
        // Cf(f, x) ! y = f ! [x, y]; with f = π1 this returns x.
        let d = db();
        let f = cf(pi1(), Value::Int(10));
        assert_eq!(eval_func(&d, &f, &Value::Int(99)).unwrap(), Value::Int(10));
        let g = cf(pi2(), Value::Int(10));
        assert_eq!(eval_func(&d, &g, &Value::Int(99)).unwrap(), Value::Int(99));
    }

    #[test]
    fn t1_cond() {
        let d = db();
        // con(gt ⊕ ⟨id, Kf(0)⟩, Kf("pos"), Kf("neg"))
        let p = oplus(gt(), pairf(id(), kf(Value::Int(0))));
        let f = con(p, kf(Value::str("pos")), kf(Value::str("neg")));
        assert_eq!(
            eval_func(&d, &f, &Value::Int(5)).unwrap(),
            Value::str("pos")
        );
        assert_eq!(
            eval_func(&d, &f, &Value::Int(-5)).unwrap(),
            Value::str("neg")
        );
    }

    #[test]
    fn t1_oplus_and_or_not_const_curry() {
        let d = db();
        let pos = oplus(gt(), pairf(id(), kf(Value::Int(0))));
        let lt10 = oplus(lt(), pairf(id(), kf(Value::Int(10))));
        assert!(eval_pred(&d, &and(pos.clone(), lt10.clone()), &Value::Int(5)).unwrap());
        assert!(!eval_pred(&d, &and(pos.clone(), lt10.clone()), &Value::Int(50)).unwrap());
        assert!(eval_pred(&d, &or(pos.clone(), lt10.clone()), &Value::Int(50)).unwrap());
        assert!(!eval_pred(&d, &not(pos.clone()), &Value::Int(5)).unwrap());
        assert!(eval_pred(&d, &kp(true), &Value::Unit).unwrap());
        assert!(!eval_pred(&d, &kp(false), &Value::Unit).unwrap());
        // Cp(p, x) ? y = p ? [x, y]
        let c = cp(leq(), Value::Int(25));
        assert!(eval_pred(&d, &c, &Value::Int(30)).unwrap()); // 25 <= 30
        assert!(!eval_pred(&d, &c, &Value::Int(20)).unwrap());
    }

    // --- Table 2 semantics, one test per row ---

    #[test]
    fn t2_flat() {
        let d = db();
        let nested = Value::set([iset([1, 2]), iset([2, 3])]);
        assert_eq!(eval_func(&d, &flat(), &nested).unwrap(), iset([1, 2, 3]));
    }

    #[test]
    fn t2_iterate() {
        let d = db();
        // iterate(x > 2, id) over {1,2,3,4}
        let p = oplus(gt(), pairf(id(), kf(Value::Int(2))));
        let f = iterate(p, id());
        assert_eq!(
            eval_func(&d, &f, &iset([1, 2, 3, 4])).unwrap(),
            iset([3, 4])
        );
    }

    #[test]
    fn t2_iter() {
        let d = db();
        // iter(Kp(T), π2) ! [e, B] = B
        let f = iter(kp(true), pi2());
        let arg = Value::pair(Value::Int(9), iset([1, 2]));
        assert_eq!(eval_func(&d, &f, &arg).unwrap(), iset([1, 2]));
        // iter's predicate sees [e, y]: keep y < e
        let f = iter(oplus(gt(), pairf(pi1(), pi2())), pi2());
        let arg = Value::pair(Value::Int(2), iset([1, 2, 3]));
        assert_eq!(eval_func(&d, &f, &arg).unwrap(), iset([1]));
    }

    #[test]
    fn t2_join() {
        let d = db();
        // join(eq, π1) ! [{1,2}, {2,3}] = {2}
        let f = join(eq(), pi1());
        let arg = Value::pair(iset([1, 2]), iset([2, 3]));
        assert_eq!(eval_func(&d, &f, &arg).unwrap(), iset([2]));
        // Cross product via Kp(T)
        let f = join(kp(true), id());
        let arg = Value::pair(iset([1]), iset([2, 3]));
        assert_eq!(
            eval_func(&d, &f, &arg).unwrap(),
            Value::set([
                Value::pair(Value::Int(1), Value::Int(2)),
                Value::pair(Value::Int(1), Value::Int(3)),
            ])
        );
    }

    #[test]
    fn t2_nest_groups_and_keeps_empty_groups() {
        let d = db();
        // nest(π1, π2) ! [{[1,10],[1,11],[2,20]}, {1,2,3}]
        let a = Value::set([
            Value::pair(Value::Int(1), Value::Int(10)),
            Value::pair(Value::Int(1), Value::Int(11)),
            Value::pair(Value::Int(2), Value::Int(20)),
        ]);
        let b = iset([1, 2, 3]);
        let f = nest(pi1(), pi2());
        let got = eval_func(&d, &f, &Value::pair(a, b)).unwrap();
        let want = Value::set([
            Value::pair(Value::Int(1), iset([10, 11])),
            Value::pair(Value::Int(2), iset([20])),
            // 3 never satisfies the grouping: paired with ∅, not dropped —
            // this is the paper's NULL-avoidance property.
            Value::pair(Value::Int(3), Value::empty_set()),
        ]);
        assert_eq!(got, want);
    }

    #[test]
    fn t2_unnest() {
        let d = db();
        // unnest(π1, π2) ! {[1,{10,11}]} = {[1,10],[1,11]}
        let a = Value::set([Value::pair(Value::Int(1), iset([10, 11]))]);
        let f = unnest(pi1(), pi2());
        assert_eq!(
            eval_func(&d, &f, &a).unwrap(),
            Value::set([
                Value::pair(Value::Int(1), Value::Int(10)),
                Value::pair(Value::Int(1), Value::Int(11)),
            ])
        );
    }

    #[test]
    fn nest_of_join_represents_every_element() {
        // §3: nest(π1, π2) ! [join(p, id) ! [A, B], A] represents every
        // element of A, even those that never satisfy the join predicate.
        let d = db();
        let a = iset([1, 2, 3]);
        let b = iset([10]);
        // p: first < 2 (so only 1 joins)
        let p = oplus(lt(), pairf(pi1(), kf(Value::Int(2))));
        let joined = eval_func(&d, &join(p, id()), &Value::pair(a.clone(), b.clone())).unwrap();
        let nested = eval_func(&d, &nest(pi1(), pi2()), &Value::pair(joined, a)).unwrap();
        let keys: Vec<Value> = nested
            .as_set()
            .unwrap()
            .iter()
            .map(|pair| pair.as_pair().unwrap().0.clone())
            .collect();
        assert_eq!(keys, vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
    }

    // --- query-level evaluation ---

    #[test]
    fn query_extent_and_app() {
        let mut d = db();
        d.bind_extent("S", iset([1, 2, 3]));
        let q = app(iterate(kp(true), id()), ext("S"));
        assert_eq!(eval_query(&d, &q).unwrap(), iset([1, 2, 3]));
    }

    #[test]
    fn query_set_ops() {
        let mut d = db();
        d.bind_extent("A", iset([1, 2]));
        d.bind_extent("B", iset([2, 3]));
        assert_eq!(
            eval_query(&d, &union(ext("A"), ext("B"))).unwrap(),
            iset([1, 2, 3])
        );
        assert_eq!(
            eval_query(&d, &intersect(ext("A"), ext("B"))).unwrap(),
            iset([2])
        );
        assert_eq!(
            eval_query(&d, &diff(ext("A"), ext("B"))).unwrap(),
            iset([1])
        );
    }

    #[test]
    fn query_test() {
        let d = db();
        let q = test(gt(), pairq(int(3), int(2)));
        assert_eq!(eval_query(&d, &q).unwrap(), Value::Bool(true));
    }

    #[test]
    fn reduction_example_from_section_3() {
        // iterate(Kp(T), city ∘ addr) ! P returns the cities of people in P.
        let schema = Schema::paper_schema();
        let person = schema.class_id("Person").unwrap();
        let address = schema.class_id("Address").unwrap();
        let mut d = Db::new(schema);
        let boston = d
            .insert(address, vec![Value::str("Boston"), Value::Int(1)])
            .unwrap();
        let nyc = d
            .insert(address, vec![Value::str("NYC"), Value::Int(2)])
            .unwrap();
        let mk_person = |d: &mut Db, addr, age: i64, name: &str| {
            d.insert(
                person,
                vec![
                    Value::Obj(addr),
                    Value::Int(age),
                    Value::str(name),
                    Value::empty_set(),
                    Value::empty_set(),
                    Value::empty_set(),
                ],
            )
            .unwrap()
        };
        let p0 = mk_person(&mut d, boston, 30, "a");
        let p1 = mk_person(&mut d, nyc, 20, "b");
        d.bind_extent("P", Value::set([Value::Obj(p0), Value::Obj(p1)]));

        let q = app(iterate(kp(true), o(prim("city"), prim("addr"))), ext("P"));
        assert_eq!(
            eval_query(&d, &q).unwrap(),
            Value::set([Value::str("Boston"), Value::str("NYC")])
        );
    }

    #[test]
    fn bag_combinators() {
        let d = db();
        // bagify: one occurrence per set element.
        let b = eval_func(&d, &bagify(), &iset([1, 2])).unwrap();
        let Value::Bag(bag) = &b else { panic!("{b}") };
        assert_eq!(bag.len(), 2);
        // biterate preserves multiplicity and sums collisions.
        let squash = biterate(kp(true), kf(Value::Int(0)));
        let out = eval_func(&d, &squash, &b).unwrap();
        let Value::Bag(bag) = &out else { panic!() };
        assert_eq!(bag.count(&Value::Int(0)), 2, "collision sums: {out}");
        // dedup collapses to the support set.
        assert_eq!(
            eval_func(&d, &dedup(), &out).unwrap(),
            Value::set([Value::Int(0)])
        );
        // bunion adds multiplicities.
        let u = eval_func(&d, &bunion(), &Value::pair(b.clone(), b.clone())).unwrap();
        let Value::Bag(bag) = &u else { panic!() };
        assert_eq!(bag.len(), 4);
        // bflat multiplies multiplicities.
        let bb = eval_func(&d, &bagify(), &Value::set([u.clone()])).unwrap();
        let flat_out = eval_func(&d, &Func::BFlat, &bb).unwrap();
        let Value::Bag(bag) = &flat_out else { panic!() };
        assert_eq!(bag.len(), 4);
    }

    #[test]
    fn bag_combinators_stuck_on_wrong_shapes() {
        let d = db();
        assert!(eval_func(&d, &bagify(), &Value::Int(1)).is_err());
        assert!(eval_func(&d, &dedup(), &iset([1])).is_err());
        assert!(eval_func(&d, &biterate(kp(true), id()), &iset([1])).is_err());
        assert!(eval_func(&d, &bunion(), &iset([1])).is_err());
        assert!(eval_func(&d, &Func::BFlat, &iset([1])).is_err());
    }

    #[test]
    fn adversarially_deep_terms_error_instead_of_overflowing() {
        // A 100_000-deep ∘-chain: the recursive evaluator used to blow the
        // native stack here; now it returns a structured error.
        let d = db();
        let mut f = id();
        for _ in 0..100_000 {
            f = o(id(), f);
        }
        let q = crate::builder::app(f.clone(), crate::builder::int(1));
        assert_eq!(
            eval_query(&d, &q),
            Err(EvalError::DepthExceeded {
                limit: MAX_EVAL_DEPTH
            })
        );
        assert_eq!(
            eval_func(&d, &f, &Value::Int(1)),
            Err(EvalError::DepthExceeded {
                limit: MAX_EVAL_DEPTH
            })
        );
        // Deep predicates too.
        let mut p = kp(true);
        for _ in 0..100_000 {
            p = not(p);
        }
        assert_eq!(
            eval_pred(&d, &p, &Value::Unit),
            Err(EvalError::DepthExceeded {
                limit: MAX_EVAL_DEPTH
            })
        );
    }

    #[test]
    fn depth_cap_is_configurable_and_generous_by_default() {
        let d = db();
        let mut f = id();
        for _ in 0..60 {
            f = o(id(), f);
        }
        // 60 levels fits the default cap (and, in debug builds with their
        // ~16 KB evaluator frames, stays inside EVAL_STACK_BUDGET)…
        assert_eq!(eval_func(&d, &f, &Value::Int(3)).unwrap(), Value::Int(3));
        // …but not an explicit cap of 50.
        assert_eq!(
            eval_func_depth(&d, &f, &Value::Int(3), 50),
            Err(EvalError::DepthExceeded { limit: 50 })
        );
    }

    #[test]
    fn stuck_terms_error_cleanly() {
        let d = db();
        assert!(eval_func(&d, &flat(), &Value::Int(3)).is_err());
        assert!(eval_func(&d, &iterate(kp(true), id()), &Value::Int(3)).is_err());
        assert!(eval_pred(&d, &gt(), &Value::Bool(true)).is_err());
        assert!(eval_pred(&d, &isin(), &Value::pair(Value::Int(1), Value::Int(2))).is_err());
    }
}
