//! `EXPLAIN`-style tree rendering of KOLA queries.
//!
//! The one-line paper notation ([`crate::display`]) is faithful but hard to
//! scan for large plans; [`explain_query`] renders the same term as an
//! indented operator tree, the way optimizers print plans:
//!
//! ```text
//! ! apply
//! ├─ nest(pi1, pi2)
//! │  ∘ unnest(pi1, pi2) * id
//! │  ∘ (join(in @ id * cars, id * grgs), pi1)
//! └─ [V, P]
//! ```

use crate::term::{Func, Pred, Query};
use std::fmt::Write;

/// Render a query as an indented operator tree.
pub fn explain_query(q: &Query) -> String {
    let mut out = String::new();
    query(q, "", &mut out);
    out
}

/// Render a function as an indented tree (compose chains become `∘` lists).
pub fn explain_func(f: &Func) -> String {
    let mut out = String::new();
    func(f, "", &mut out);
    out
}

fn line(out: &mut String, prefix: &str, text: &str) {
    let _ = writeln!(out, "{prefix}{text}");
}

/// Children are rendered with box-drawing connectors.
fn branches<'a>(prefix: &str, children: Vec<(&'static str, Node<'a>)>, out: &mut String) {
    let n = children.len();
    for (i, (label, child)) in children.into_iter().enumerate() {
        let last = i + 1 == n;
        let conn = if last { "└─ " } else { "├─ " };
        let cont = if last { "   " } else { "│  " };
        let child_prefix = format!("{prefix}{cont}");
        let mut rendered = String::new();
        match child {
            Node::F(f) => func(f, &child_prefix, &mut rendered),
            Node::P(p) => pred(p, &child_prefix, &mut rendered),
            Node::Q(q) => query(q, &child_prefix, &mut rendered),
        }
        // First line of the child gets the connector; rest keep the prefix.
        let mut lines = rendered.lines();
        if let Some(first) = lines.next() {
            let stripped = first.strip_prefix(&child_prefix).unwrap_or(first);
            let label_text = if label.is_empty() {
                stripped.to_string()
            } else {
                format!("{label}: {stripped}")
            };
            line(out, &format!("{prefix}{conn}"), &label_text);
        }
        for rest in lines {
            let _ = writeln!(out, "{rest}");
        }
    }
}

enum Node<'a> {
    F(&'a Func),
    P(&'a Pred),
    Q(&'a Query),
}

fn query(q: &Query, prefix: &str, out: &mut String) {
    match q {
        Query::Lit(v) => line(out, prefix, &format!("lit {v}")),
        Query::Extent(s) => line(out, prefix, &format!("extent {s}")),
        Query::PairQ(a, b) => {
            line(out, prefix, "pair");
            branches(prefix, vec![("", Node::Q(a)), ("", Node::Q(b))], out);
        }
        Query::App(f, inner) => {
            line(out, prefix, "! apply");
            branches(prefix, vec![("", Node::F(f)), ("to", Node::Q(inner))], out);
        }
        Query::Test(p, inner) => {
            line(out, prefix, "? test");
            branches(prefix, vec![("", Node::P(p)), ("on", Node::Q(inner))], out);
        }
        Query::Union(a, b) => {
            line(out, prefix, "union");
            branches(prefix, vec![("", Node::Q(a)), ("", Node::Q(b))], out);
        }
        Query::Intersect(a, b) => {
            line(out, prefix, "intersect");
            branches(prefix, vec![("", Node::Q(a)), ("", Node::Q(b))], out);
        }
        Query::Diff(a, b) => {
            line(out, prefix, "diff");
            branches(prefix, vec![("", Node::Q(a)), ("", Node::Q(b))], out);
        }
    }
}

fn func(f: &Func, prefix: &str, out: &mut String) {
    match f {
        Func::Compose(..) => {
            // Flatten the chain into a pipeline list.
            line(out, prefix, "pipeline (∘)");
            let mut segs = Vec::new();
            fn collect<'a>(f: &'a Func, segs: &mut Vec<&'a Func>) {
                match f {
                    Func::Compose(a, b) => {
                        collect(a, segs);
                        collect(b, segs);
                    }
                    leaf => segs.push(leaf),
                }
            }
            collect(f, &mut segs);
            branches(
                prefix,
                segs.into_iter().map(|s| ("", Node::F(s))).collect(),
                out,
            );
        }
        Func::Iterate(p, body) => {
            line(out, prefix, "iterate");
            branches(
                prefix,
                vec![("where", Node::P(p)), ("map", Node::F(body))],
                out,
            );
        }
        Func::Iter(p, body) => {
            line(out, prefix, "iter (env-carrying)");
            branches(
                prefix,
                vec![("where", Node::P(p)), ("map", Node::F(body))],
                out,
            );
        }
        Func::Join(p, body) => {
            line(out, prefix, "join");
            branches(
                prefix,
                vec![("on", Node::P(p)), ("emit", Node::F(body))],
                out,
            );
        }
        Func::Nest(k, v) => {
            line(out, prefix, "nest (group)");
            branches(
                prefix,
                vec![("key", Node::F(k)), ("value", Node::F(v))],
                out,
            );
        }
        Func::Unnest(k, v) => {
            line(out, prefix, "unnest");
            branches(prefix, vec![("key", Node::F(k)), ("set", Node::F(v))], out);
        }
        Func::PairWith(a, b) => {
            line(out, prefix, "⟨,⟩ pairing");
            branches(prefix, vec![("", Node::F(a)), ("", Node::F(b))], out);
        }
        Func::Times(a, b) => {
            line(out, prefix, "× product");
            branches(prefix, vec![("", Node::F(a)), ("", Node::F(b))], out);
        }
        Func::Cond(p, a, b) => {
            line(out, prefix, "con (if)");
            branches(
                prefix,
                vec![
                    ("if", Node::P(p)),
                    ("then", Node::F(a)),
                    ("else", Node::F(b)),
                ],
                out,
            );
        }
        Func::ConstF(q) => {
            line(out, prefix, "Kf (constant)");
            branches(prefix, vec![("", Node::Q(q))], out);
        }
        Func::CurryF(g, q) => {
            line(out, prefix, "Cf (curry)");
            branches(prefix, vec![("", Node::F(g)), ("with", Node::Q(q))], out);
        }
        leaf => line(out, prefix, &leaf.to_string()),
    }
}

fn pred(p: &Pred, prefix: &str, out: &mut String) {
    match p {
        Pred::And(a, b) => {
            line(out, prefix, "and");
            branches(prefix, vec![("", Node::P(a)), ("", Node::P(b))], out);
        }
        Pred::Or(a, b) => {
            line(out, prefix, "or");
            branches(prefix, vec![("", Node::P(a)), ("", Node::P(b))], out);
        }
        Pred::Oplus(q, f) => {
            line(out, prefix, "⊕ over");
            branches(prefix, vec![("pred", Node::P(q)), ("via", Node::F(f))], out);
        }
        Pred::Not(q) => {
            line(out, prefix, "not");
            branches(prefix, vec![("", Node::P(q))], out);
        }
        Pred::Conv(q) => {
            line(out, prefix, "inv (converse)");
            branches(prefix, vec![("", Node::P(q))], out);
        }
        Pred::CurryP(q, payload) => {
            line(out, prefix, "Cp (curry)");
            branches(
                prefix,
                vec![("", Node::P(q)), ("with", Node::Q(payload))],
                out,
            );
        }
        leaf => line(out, prefix, &leaf.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_query;

    #[test]
    fn kg2_explains_as_a_pipeline() {
        let q = parse_query(
            "nest(pi1, pi2) . unnest(pi1, pi2) * id . \
             (join(in @ id * cars, id * grgs), pi1) ! [V, P]",
        )
        .unwrap();
        let tree = explain_query(&q);
        assert!(tree.contains("! apply"), "{tree}");
        assert!(tree.contains("pipeline (∘)"), "{tree}");
        assert!(tree.contains("nest (group)"), "{tree}");
        assert!(tree.contains("join"), "{tree}");
        // Tree lines are properly indented under the pipeline.
        assert!(tree.lines().count() > 10, "{tree}");
    }

    #[test]
    fn leaf_queries_are_single_lines() {
        let q = parse_query("P").unwrap();
        assert_eq!(explain_query(&q), "extent P\n");
    }

    #[test]
    fn iterate_shows_where_and_map() {
        let q = parse_query("iterate(gt @ (age, Kf(25)), age) ! P").unwrap();
        let tree = explain_query(&q);
        assert!(tree.contains("where:"), "{tree}");
        assert!(tree.contains("map: age"), "{tree}");
        assert!(tree.contains("to: extent P"), "{tree}");
    }

    #[test]
    fn connectors_are_well_formed() {
        let q = parse_query("iterate(Kp(T), con(gt @ (age, Kf(25)), (id, child), Kf({}))) ! P")
            .unwrap();
        let tree = explain_query(&q);
        for l in tree.lines() {
            assert!(!l.trim_end().is_empty(), "no blank lines: {tree:?}");
        }
        assert!(tree.contains("con (if)"), "{tree}");
        assert!(tree.contains("then:"), "{tree}");
        assert!(tree.contains("else:"), "{tree}");
    }
}
