//! Hash-consed (interned) representation of KOLA terms.
//!
//! The paper's variable-free combinator terms are pure syntax — no binders,
//! no α-renaming — which makes them ideal for *hash-consing*: every distinct
//! subterm is built exactly once per [`Interner`], and structurally equal
//! subterms are the *same* allocation. Within one interner this gives
//!
//! * O(1) structural equality ([`ITerm::ptr_eq`]),
//! * O(1) size/depth queries (cached at construction, so budget enforcement
//!   no longer re-walks the term each step),
//! * a precomputed 64-bit structural fingerprint ([`ITerm::fp`]) for cycle
//!   detection and memoization, and
//! * free structural sharing: "cloning" a subtree is an `Arc` bump.
//!
//! The representation is a flat [`Tag`] + payload + children encoding rather
//! than three mirrored enums: one node type covers [`Func`], [`Pred`] and
//! [`Query`] uniformly, so the rewrite engine's generic machinery (matching,
//! indexing, rebuilding along a path) is written once.
//!
//! Conversion is lossless both ways: [`Interner::intern_query`] and
//! [`ITerm::to_query`] (and the `func`/`pred` analogues) round-trip every
//! term, using explicit stacks so arbitrarily deep ∘-chains cost heap, not
//! stack.
//!
//! **Drop discipline.** Interned nodes hold `Arc`s to their children, so
//! dropping the last reference to a deep chain would recurse. The interner's
//! [`Drop`] impl prevents this by releasing its table in decreasing-size
//! order (a parent is strictly larger than any child, so every release
//! cascades at most one level). Holders of `ITerm`s must therefore drop them
//! *before* the interner that created them — in a struct, declare the
//! `ITerm`-holding fields before the `Interner` field.

use crate::term::{Func, Pred, Query};
use crate::value::{Sym, Value};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Flat constructor tag covering all three term levels.
///
/// `F*` tags are [`Func`] constructors, `P*` tags are [`Pred`] constructors,
/// `Q*` tags are [`Query`] constructors, in declaration order of the
/// originals. The numeric discriminant participates in fingerprints.
#[allow(missing_docs)] // one-to-one with the documented `Func`/`Pred`/`Query` variants
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Tag {
    // Func
    FId,
    FPi1,
    FPi2,
    FPrim,
    FCompose,
    FPairWith,
    FTimes,
    FConstF,
    FCurryF,
    FCond,
    FFlat,
    FIterate,
    FIter,
    FJoin,
    FNest,
    FUnnest,
    FBagify,
    FDedup,
    FBIterate,
    FBUnion,
    FBFlat,
    FSetUnion,
    FSetIntersect,
    FSetDiff,
    // Pred
    PEq,
    PLt,
    PLeq,
    PGt,
    PGeq,
    PIn,
    PPrimP,
    POplus,
    PAnd,
    POr,
    PNot,
    PConv,
    PConstP,
    PCurryP,
    // Query
    QLit,
    QExtent,
    QPairQ,
    QApp,
    QTest,
    QUnion,
    QIntersect,
    QDiff,
}

impl Tag {
    /// The tag of a concrete function's root constructor.
    pub fn of_func(f: &Func) -> Tag {
        match f {
            Func::Id => Tag::FId,
            Func::Pi1 => Tag::FPi1,
            Func::Pi2 => Tag::FPi2,
            Func::Prim(_) => Tag::FPrim,
            Func::Compose(..) => Tag::FCompose,
            Func::PairWith(..) => Tag::FPairWith,
            Func::Times(..) => Tag::FTimes,
            Func::ConstF(_) => Tag::FConstF,
            Func::CurryF(..) => Tag::FCurryF,
            Func::Cond(..) => Tag::FCond,
            Func::Flat => Tag::FFlat,
            Func::Iterate(..) => Tag::FIterate,
            Func::Iter(..) => Tag::FIter,
            Func::Join(..) => Tag::FJoin,
            Func::Nest(..) => Tag::FNest,
            Func::Unnest(..) => Tag::FUnnest,
            Func::Bagify => Tag::FBagify,
            Func::Dedup => Tag::FDedup,
            Func::BIterate(..) => Tag::FBIterate,
            Func::BUnion => Tag::FBUnion,
            Func::BFlat => Tag::FBFlat,
            Func::SetUnion => Tag::FSetUnion,
            Func::SetIntersect => Tag::FSetIntersect,
            Func::SetDiff => Tag::FSetDiff,
        }
    }

    /// The tag of a concrete predicate's root constructor.
    pub fn of_pred(p: &Pred) -> Tag {
        match p {
            Pred::Eq => Tag::PEq,
            Pred::Lt => Tag::PLt,
            Pred::Leq => Tag::PLeq,
            Pred::Gt => Tag::PGt,
            Pred::Geq => Tag::PGeq,
            Pred::In => Tag::PIn,
            Pred::PrimP(_) => Tag::PPrimP,
            Pred::Oplus(..) => Tag::POplus,
            Pred::And(..) => Tag::PAnd,
            Pred::Or(..) => Tag::POr,
            Pred::Not(_) => Tag::PNot,
            Pred::Conv(_) => Tag::PConv,
            Pred::ConstP(_) => Tag::PConstP,
            Pred::CurryP(..) => Tag::PCurryP,
        }
    }

    /// The tag of a concrete query's root constructor.
    pub fn of_query(q: &Query) -> Tag {
        match q {
            Query::Lit(_) => Tag::QLit,
            Query::Extent(_) => Tag::QExtent,
            Query::PairQ(..) => Tag::QPairQ,
            Query::App(..) => Tag::QApp,
            Query::Test(..) => Tag::QTest,
            Query::Union(..) => Tag::QUnion,
            Query::Intersect(..) => Tag::QIntersect,
            Query::Diff(..) => Tag::QDiff,
        }
    }
}

/// Non-child data carried by an interned node. `Hash` hashes the payload
/// *structurally* (the `Sym`/`Value` contents, not addresses), which is what
/// lets the e-graph's hashcons key e-nodes on `(Tag, Payload, child classes)`;
/// `Ord` gives e-nodes a total order so e-class contents stay canonical.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Payload {
    /// No payload (most constructors).
    None,
    /// A symbol (`Prim`, `PrimP`, `Extent`).
    Sym(Sym),
    /// A boolean (`ConstP`).
    Bool(bool),
    /// A literal value (`Lit`).
    Value(Arc<Value>),
}

impl Payload {
    fn hash64(&self) -> u64 {
        let mut h = DefaultHasher::new();
        match self {
            Payload::None => 0u8.hash(&mut h),
            Payload::Sym(s) => {
                1u8.hash(&mut h);
                s.hash(&mut h);
            }
            Payload::Bool(b) => {
                2u8.hash(&mut h);
                b.hash(&mut h);
            }
            Payload::Value(v) => {
                3u8.hash(&mut h);
                v.hash(&mut h);
            }
        }
        h.finish()
    }
}

/// One hash-consed node. Private: reached through [`ITerm`].
#[derive(Debug)]
struct INode {
    tag: Tag,
    payload: Payload,
    kids: Box<[ITerm]>,
    fp: u64,
    size: usize,
    depth: usize,
}

/// A handle to a hash-consed term (function, predicate or query level).
///
/// Cheap to clone (`Arc` bump). Within the [`Interner`] that created them,
/// two `ITerm`s are structurally equal iff [`ITerm::ptr_eq`] — never compare
/// handles from different interners.
#[derive(Debug, Clone)]
pub struct ITerm(Arc<INode>);

impl ITerm {
    /// Root constructor tag.
    pub fn tag(&self) -> Tag {
        self.0.tag
    }

    /// Non-child payload of the root.
    pub fn payload(&self) -> &Payload {
        &self.0.payload
    }

    /// Children, in the same order the rewrite engine descends the
    /// boxed representation.
    pub fn kids(&self) -> &[ITerm] {
        &self.0.kids
    }

    /// Precomputed 64-bit structural fingerprint. Equal terms always have
    /// equal fingerprints; distinct terms collide with probability ≈ 2⁻⁶⁴.
    pub fn fp(&self) -> u64 {
        self.0.fp
    }

    /// Cached node count (agrees with [`Func::size`] etc.).
    pub fn size(&self) -> usize {
        self.0.size
    }

    /// Cached maximum nesting depth (agrees with [`Func::depth`] etc.).
    pub fn depth(&self) -> usize {
        self.0.depth
    }

    /// Identity of the underlying allocation — usable as an exact key for
    /// memo tables and cycle detection *within one interner*.
    pub fn id(&self) -> usize {
        Arc::as_ptr(&self.0) as usize
    }

    /// O(1) structural equality for terms from the same interner.
    pub fn ptr_eq(&self, other: &ITerm) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }

    /// Reify as a [`Func`]. Panics if this node is not function-level —
    /// levels are static in every caller, so a mismatch is an engine bug.
    pub fn to_func(&self) -> Func {
        match self.reify() {
            Out::F(f) => f,
            _ => unreachable!("level mismatch: expected a Func node"),
        }
    }

    /// Reify as a [`Pred`]. Panics on level mismatch (see [`ITerm::to_func`]).
    pub fn to_pred(&self) -> Pred {
        match self.reify() {
            Out::P(p) => p,
            _ => unreachable!("level mismatch: expected a Pred node"),
        }
    }

    /// Reify as a [`Query`]. Panics on level mismatch (see [`ITerm::to_func`]).
    pub fn to_query(&self) -> Query {
        match self.reify() {
            Out::Q(q) => q,
            _ => unreachable!("level mismatch: expected a Query node"),
        }
    }

    /// Stack-safe reification of this node back into boxed terms.
    fn reify(&self) -> Out {
        enum Walk<'a> {
            Visit(&'a ITerm),
            Build(&'a ITerm),
        }
        let mut tasks = vec![Walk::Visit(self)];
        let mut out: Vec<Out> = Vec::new();
        while let Some(task) = tasks.pop() {
            match task {
                Walk::Visit(t) => {
                    tasks.push(Walk::Build(t));
                    for k in t.kids().iter().rev() {
                        tasks.push(Walk::Visit(k));
                    }
                }
                Walk::Build(t) => {
                    let kids = out.split_off(out.len() - t.kids().len());
                    out.push(build_node(t.tag(), t.payload(), kids));
                }
            }
        }
        out.pop().expect("reify yields exactly one term")
    }
}

/// Reified term at any of the three levels.
enum Out {
    F(Func),
    P(Pred),
    Q(Query),
}

impl Out {
    fn f(self) -> Box<Func> {
        match self {
            Out::F(f) => Box::new(f),
            _ => unreachable!("kid level mismatch: expected Func"),
        }
    }
    fn p(self) -> Box<Pred> {
        match self {
            Out::P(p) => Box::new(p),
            _ => unreachable!("kid level mismatch: expected Pred"),
        }
    }
    fn q(self) -> Box<Query> {
        match self {
            Out::Q(q) => Box::new(q),
            _ => unreachable!("kid level mismatch: expected Query"),
        }
    }
}

/// Build one boxed node from a tag, payload and already-reified children.
fn build_node(tag: Tag, payload: &Payload, kids: Vec<Out>) -> Out {
    let mut k = kids.into_iter();
    let mut next = || k.next().expect("arity checked at intern time");
    let sym = || match payload {
        Payload::Sym(s) => s.clone(),
        _ => unreachable!("payload mismatch: expected Sym"),
    };
    match tag {
        Tag::FId => Out::F(Func::Id),
        Tag::FPi1 => Out::F(Func::Pi1),
        Tag::FPi2 => Out::F(Func::Pi2),
        Tag::FPrim => Out::F(Func::Prim(sym())),
        Tag::FCompose => Out::F(Func::Compose(next().f(), next().f())),
        Tag::FPairWith => Out::F(Func::PairWith(next().f(), next().f())),
        Tag::FTimes => Out::F(Func::Times(next().f(), next().f())),
        Tag::FConstF => Out::F(Func::ConstF(next().q())),
        Tag::FCurryF => Out::F(Func::CurryF(next().f(), next().q())),
        Tag::FCond => Out::F(Func::Cond(next().p(), next().f(), next().f())),
        Tag::FFlat => Out::F(Func::Flat),
        Tag::FIterate => Out::F(Func::Iterate(next().p(), next().f())),
        Tag::FIter => Out::F(Func::Iter(next().p(), next().f())),
        Tag::FJoin => Out::F(Func::Join(next().p(), next().f())),
        Tag::FNest => Out::F(Func::Nest(next().f(), next().f())),
        Tag::FUnnest => Out::F(Func::Unnest(next().f(), next().f())),
        Tag::FBagify => Out::F(Func::Bagify),
        Tag::FDedup => Out::F(Func::Dedup),
        Tag::FBIterate => Out::F(Func::BIterate(next().p(), next().f())),
        Tag::FBUnion => Out::F(Func::BUnion),
        Tag::FBFlat => Out::F(Func::BFlat),
        Tag::FSetUnion => Out::F(Func::SetUnion),
        Tag::FSetIntersect => Out::F(Func::SetIntersect),
        Tag::FSetDiff => Out::F(Func::SetDiff),
        Tag::PEq => Out::P(Pred::Eq),
        Tag::PLt => Out::P(Pred::Lt),
        Tag::PLeq => Out::P(Pred::Leq),
        Tag::PGt => Out::P(Pred::Gt),
        Tag::PGeq => Out::P(Pred::Geq),
        Tag::PIn => Out::P(Pred::In),
        Tag::PPrimP => Out::P(Pred::PrimP(sym())),
        Tag::POplus => Out::P(Pred::Oplus(next().p(), next().f())),
        Tag::PAnd => Out::P(Pred::And(next().p(), next().p())),
        Tag::POr => Out::P(Pred::Or(next().p(), next().p())),
        Tag::PNot => Out::P(Pred::Not(next().p())),
        Tag::PConv => Out::P(Pred::Conv(next().p())),
        Tag::PConstP => match payload {
            Payload::Bool(b) => Out::P(Pred::ConstP(*b)),
            _ => unreachable!("payload mismatch: expected Bool"),
        },
        Tag::PCurryP => Out::P(Pred::CurryP(next().p(), next().q())),
        Tag::QLit => match payload {
            Payload::Value(v) => Out::Q(Query::Lit((**v).clone())),
            _ => unreachable!("payload mismatch: expected Value"),
        },
        Tag::QExtent => Out::Q(Query::Extent(sym())),
        Tag::QPairQ => Out::Q(Query::PairQ(next().q(), next().q())),
        Tag::QApp => Out::Q(Query::App(*next().f(), next().q())),
        Tag::QTest => Out::Q(Query::Test(*next().p(), next().q())),
        Tag::QUnion => Out::Q(Query::Union(next().q(), next().q())),
        Tag::QIntersect => Out::Q(Query::Intersect(next().q(), next().q())),
        Tag::QDiff => Out::Q(Query::Diff(next().q(), next().q())),
    }
}

/// Source term at any of the three levels (borrowed, for interning).
enum Src<'a> {
    F(&'a Func),
    P(&'a Pred),
    Q(&'a Query),
}

impl<'a> Src<'a> {
    /// Tag, payload, and borrowed children of this node, in intern order.
    fn decompose(&self) -> (Tag, Payload, Vec<Src<'a>>) {
        use Src::{F, P, Q};
        match self {
            F(f) => {
                let tag = Tag::of_func(f);
                match f {
                    Func::Prim(s) => (tag, Payload::Sym(s.clone()), vec![]),
                    Func::Compose(a, b)
                    | Func::PairWith(a, b)
                    | Func::Times(a, b)
                    | Func::Nest(a, b)
                    | Func::Unnest(a, b) => (tag, Payload::None, vec![F(a), F(b)]),
                    Func::ConstF(q) => (tag, Payload::None, vec![Q(q)]),
                    Func::CurryF(g, q) => (tag, Payload::None, vec![F(g), Q(q)]),
                    Func::Cond(p, g, h) => (tag, Payload::None, vec![P(p), F(g), F(h)]),
                    Func::Iterate(p, g)
                    | Func::Iter(p, g)
                    | Func::Join(p, g)
                    | Func::BIterate(p, g) => (tag, Payload::None, vec![P(p), F(g)]),
                    _ => (tag, Payload::None, vec![]),
                }
            }
            P(p) => {
                let tag = Tag::of_pred(p);
                match p {
                    Pred::PrimP(s) => (tag, Payload::Sym(s.clone()), vec![]),
                    Pred::Oplus(q, g) => (tag, Payload::None, vec![P(q), F(g)]),
                    Pred::And(a, b) | Pred::Or(a, b) => (tag, Payload::None, vec![P(a), P(b)]),
                    Pred::Not(q) | Pred::Conv(q) => (tag, Payload::None, vec![P(q)]),
                    Pred::ConstP(b) => (tag, Payload::Bool(*b), vec![]),
                    Pred::CurryP(q, x) => (tag, Payload::None, vec![P(q), Q(x)]),
                    _ => (tag, Payload::None, vec![]),
                }
            }
            Q(q) => {
                let tag = Tag::of_query(q);
                match q {
                    Query::Lit(v) => (tag, Payload::Value(Arc::new(v.clone())), vec![]),
                    Query::Extent(s) => (tag, Payload::Sym(s.clone()), vec![]),
                    Query::PairQ(a, b)
                    | Query::Union(a, b)
                    | Query::Intersect(a, b)
                    | Query::Diff(a, b) => (tag, Payload::None, vec![Q(a), Q(b)]),
                    Query::App(f, x) => (tag, Payload::None, vec![F(f), Q(x)]),
                    Query::Test(p, x) => (tag, Payload::None, vec![P(p), Q(x)]),
                }
            }
        }
    }
}

/// 64-bit finalizer (splitmix64-style) used to mix fingerprints.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// The structural fingerprint of a borrowed query, computed without an
/// arena: for every query `q` and every interner `it`,
/// `query_fp(&q) == it.intern_query(&q).fp()`. One stack-safe post-order
/// walk that interns (and allocates) nothing beyond its explicit stack —
/// usable as a cache key on threads that own no interner (the plan cache
/// in `kola-service` keys on it at submission time). Equal queries always
/// agree; distinct queries collide with probability ≈ 2⁻⁶⁴, so callers
/// that key on it must confirm hits structurally.
pub fn query_fp(q: &Query) -> u64 {
    // Second stack mirrors `Interner::intern`: fingerprints of completed
    // subterms, consumed in arity-sized groups by their parent.
    enum Walk<'a> {
        Visit(Src<'a>),
        Build(Tag, Payload, usize),
    }
    let mut tasks = vec![Walk::Visit(Src::Q(q))];
    let mut out: Vec<u64> = Vec::new();
    while let Some(task) = tasks.pop() {
        match task {
            Walk::Visit(src) => {
                let (tag, payload, kids) = src.decompose();
                tasks.push(Walk::Build(tag, payload, kids.len()));
                for k in kids.into_iter().rev() {
                    tasks.push(Walk::Visit(k));
                }
            }
            Walk::Build(tag, payload, n) => {
                let kids = out.split_off(out.len() - n);
                // Exactly `Interner::mk`'s fingerprint computation — the
                // equality contract above depends on the two never
                // diverging.
                let mut fp = mix((tag as u64).wrapping_add(0x9e37_79b9_7f4a_7c15));
                if !matches!(payload, Payload::None) {
                    fp = mix(fp ^ payload.hash64());
                }
                for k in kids {
                    fp = mix(fp.rotate_left(13) ^ k);
                }
                out.push(fp);
            }
        }
    }
    out.pop().expect("fp walk yields exactly one value")
}

/// The hash-cons arena: owns every node it has built and deduplicates
/// structurally equal constructions.
#[derive(Debug, Default)]
pub struct Interner {
    /// fingerprint → nodes with that fingerprint (collision bucket).
    table: HashMap<u64, Vec<ITerm>>,
    /// Number of `mk` calls that had to *construct* (cache misses) — a
    /// deterministic work counter for tests and benches.
    constructed: u64,
    /// Live nodes currently in the arena (maintained incrementally so
    /// [`Interner::len`] and the peak tracking stay O(1)).
    live: usize,
    /// High-water mark of [`Interner::len`] across the arena's whole life,
    /// *including* across [`Interner::clear`] compactions — the
    /// observability hook long-lived engines export as "arena peak".
    peak: usize,
}

impl Interner {
    /// A fresh, empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct nodes constructed so far (cache misses).
    pub fn constructed(&self) -> u64 {
        self.constructed
    }

    /// Number of live distinct nodes in the arena.
    pub fn len(&self) -> usize {
        self.live
    }

    /// High-water mark of [`Interner::len`] over the arena's whole life.
    /// Survives [`Interner::clear`]: a compaction resets the live count,
    /// not the history — so a long-lived engine can report how large its
    /// arena ever got, which is what capacity planning needs.
    pub fn peak_len(&self) -> usize {
        self.peak
    }

    /// True iff no node has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Release every node and empty the arena (the reset half of the
    /// reset-or-retain contract long-lived holders need for bounded
    /// growth). Uses the same largest-first release discipline as `Drop`,
    /// so arbitrarily deep chains never recurse.
    ///
    /// Callers must drop any caches keyed by node *address* first: a fresh
    /// arena may hand a recycled allocation the same address, and a stale
    /// address key would then alias an unrelated node. Handles to deep
    /// terms held outside the arena should also be dropped before calling
    /// this — once the table no longer pins a chain's suffixes, dropping
    /// such a handle cascades child by child.
    pub fn clear(&mut self) {
        self.live = 0;
        let mut nodes: Vec<ITerm> = self.table.drain().flat_map(|(_, v)| v).collect();
        nodes.sort_by_key(|n| std::cmp::Reverse(n.size()));
        for n in nodes {
            drop(n);
        }
    }

    /// Intern one node whose children are already interned. Returns the
    /// canonical handle: if an identical node exists it is reused.
    pub fn mk(&mut self, tag: Tag, payload: Payload, kids: Vec<ITerm>) -> ITerm {
        let mut fp = mix((tag as u64).wrapping_add(0x9e37_79b9_7f4a_7c15));
        if !matches!(payload, Payload::None) {
            fp = mix(fp ^ payload.hash64());
        }
        for k in &kids {
            fp = mix(fp.rotate_left(13) ^ k.fp());
        }
        let bucket = self.table.entry(fp).or_default();
        for t in bucket.iter() {
            if t.tag() == tag
                && t.kids().len() == kids.len()
                && t.kids().iter().zip(&kids).all(|(a, b)| a.ptr_eq(b))
                && *t.payload() == payload
            {
                return t.clone();
            }
        }
        let size = 1 + kids.iter().map(|k| k.size()).sum::<usize>();
        let depth = 1 + kids.iter().map(|k| k.depth()).max().unwrap_or(0);
        let node = ITerm(Arc::new(INode {
            tag,
            payload,
            kids: kids.into_boxed_slice(),
            fp,
            size,
            depth,
        }));
        bucket.push(node.clone());
        self.constructed += 1;
        self.live += 1;
        self.peak = self.peak.max(self.live);
        node
    }

    /// Intern a concrete function.
    pub fn intern_func(&mut self, f: &Func) -> ITerm {
        self.intern(Src::F(f))
    }

    /// Intern a concrete predicate.
    pub fn intern_pred(&mut self, p: &Pred) -> ITerm {
        self.intern(Src::P(p))
    }

    /// Intern a concrete query.
    pub fn intern_query(&mut self, q: &Query) -> ITerm {
        self.intern(Src::Q(q))
    }

    /// Stack-safe bottom-up interning of a borrowed term.
    fn intern(&mut self, root: Src<'_>) -> ITerm {
        enum Walk<'a> {
            Visit(Src<'a>),
            Build(Tag, Payload, usize),
        }
        let mut tasks = vec![Walk::Visit(root)];
        let mut out: Vec<ITerm> = Vec::new();
        while let Some(task) = tasks.pop() {
            match task {
                Walk::Visit(src) => {
                    let (tag, payload, kids) = src.decompose();
                    tasks.push(Walk::Build(tag, payload, kids.len()));
                    for k in kids.into_iter().rev() {
                        tasks.push(Walk::Visit(k));
                    }
                }
                Walk::Build(tag, payload, n) => {
                    let kids = out.split_off(out.len() - n);
                    out.push(self.mk(tag, payload, kids));
                }
            }
        }
        out.pop().expect("intern yields exactly one term")
    }
}

impl Drop for Interner {
    fn drop(&mut self) {
        // Release nodes largest-first. A parent is strictly larger than any
        // of its children and the table holds every node, so when a node's
        // table reference goes away, all of its children are still pinned by
        // their own (smaller, not-yet-released) table entries: each drop
        // cascades at most one level and deep chains never recurse.
        self.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;

    #[test]
    fn hash_consing_dedups() {
        let mut it = Interner::new();
        let t = o(prim("age"), prim("addr"));
        let a = it.intern_func(&t);
        let b = it.intern_func(&t);
        assert!(a.ptr_eq(&b));
        assert_eq!(a.id(), b.id());
        // Shared subterm: `age` inside both is one node.
        let c = it.intern_func(&prim("age"));
        assert!(a.kids()[0].ptr_eq(&c));
    }

    #[test]
    fn query_fp_matches_interned_fingerprint() {
        let mut it = Interner::new();
        let mut corpus: Vec<Query> = vec![
            app(Func::Id, ext("P")),
            app(iterate(kp(true), o(prim("city"), prim("addr"))), ext("P")),
            Query::Union(Box::new(ext("P")), Box::new(ext("Q"))),
            Query::Lit(crate::Value::Int(42)),
            Query::Test(oplus(gt(), prim("age")), Box::new(ext("P"))),
            Query::PairQ(
                Box::new(Query::Lit(crate::Value::Str("x".into()))),
                Box::new(ext("P")),
            ),
        ];
        // A deep chain: the arena-free walk must not recurse.
        let mut f = prim("age");
        for _ in 0..50_000 {
            f = o(Func::Id, f);
        }
        corpus.push(app(f, ext("P")));
        for q in &corpus {
            assert_eq!(query_fp(q), it.intern_query(q).fp(), "{}", q.size());
        }
        // Distinct queries get distinct fingerprints (on this corpus).
        let fps: std::collections::BTreeSet<u64> = corpus.iter().map(query_fp).collect();
        assert_eq!(fps.len(), corpus.len());
    }

    #[test]
    fn cached_size_and_depth_agree_with_terms() {
        let mut it = Interner::new();
        for t in [
            Func::Id,
            o(Func::Id, Func::Pi1),
            iterate(kp(true), o(prim("city"), prim("addr"))),
            Func::Cond(
                Box::new(kp(false)),
                Box::new(prim("a")),
                Box::new(o(prim("b"), prim("c"))),
            ),
        ] {
            let i = it.intern_func(&t);
            assert_eq!(i.size(), t.size(), "{t}");
            assert_eq!(i.depth(), t.depth(), "{t}");
        }
        let q = app(iterate(kp(true), prim("age")), ext("P"));
        let iq = it.intern_query(&q);
        assert_eq!(iq.size(), q.size());
        assert_eq!(iq.depth(), q.depth());
    }

    #[test]
    fn round_trip_all_levels() {
        let mut it = Interner::new();
        let f = iterate(oplus(gt(), prim("age")), o(prim("city"), prim("addr")));
        assert_eq!(it.intern_func(&f).to_func(), f);
        let p = Pred::CurryP(
            Box::new(Pred::Conv(Box::new(gt()))),
            Box::new(Query::Lit(Value::Int(7))),
        );
        assert_eq!(it.intern_pred(&p).to_pred(), p);
        let q = Query::Test(p.clone(), Box::new(app(f.clone(), ext("P"))));
        assert_eq!(it.intern_query(&q).to_query(), q);
    }

    #[test]
    fn equal_terms_share_fingerprint_distinct_terms_rarely_do() {
        let mut it = Interner::new();
        let a = it.intern_func(&o(prim("age"), prim("addr")));
        let b = it.intern_func(&o(prim("age"), prim("addr")));
        let c = it.intern_func(&o(prim("addr"), prim("age")));
        assert_eq!(a.fp(), b.fp());
        assert_ne!(a.fp(), c.fp(), "kid order must influence the fingerprint");
    }

    #[test]
    fn deep_chain_roundtrip_and_drop() {
        // 10k ∘-segments: interning, reification and interner drop must all
        // be stack-safe. The reified term is torn down manually because the
        // boxed representation's drop glue recurses.
        const N: usize = 10_000;
        let mut f = prim("age");
        for _ in 0..N {
            f = o(Func::Id, f);
        }
        // 1 leaf + N × (∘ node + id node); the boxed `size()` would itself
        // recurse, so the expectation is arithmetic.
        let want = 1 + 2 * N;
        let mut it = Interner::new();
        let i = it.intern_func(&f);
        assert_eq!(i.size(), want);
        let back = i.to_func();
        // Count with an explicit reference stack; dropping the deep terms
        // afterwards is safe now that `Func` has a worklist `Drop`.
        for t in [&f, &back] {
            let mut nodes = 0usize;
            let mut work = vec![t];
            while let Some(x) = work.pop() {
                nodes += 1;
                if let Func::Compose(a, b) = x {
                    work.push(a);
                    work.push(b);
                }
            }
            assert_eq!(nodes, want);
        }
        drop(f);
        drop(back);
        drop(i);
        drop(it); // must not overflow
    }

    #[test]
    fn clear_resets_the_arena_and_survives_deep_chains() {
        const N: usize = 10_000;
        let mut f = prim("age");
        for _ in 0..N {
            f = o(Func::Id, f);
        }
        let mut it = Interner::new();
        let i = it.intern_func(&f);
        // Distinct nodes: one `age`, one `id`, N compose spine nodes.
        assert_eq!(it.len(), N + 2);
        drop(i); // no out-of-arena handles may survive a clear
        it.clear(); // must not overflow on the deep spine
        assert!(it.is_empty());
        assert_eq!(it.len(), 0);
        // The arena restarts cleanly: interning after a clear rebuilds.
        let a = it.intern_func(&prim("age"));
        assert_eq!(it.len(), 1);
        assert_eq!(a.to_func(), prim("age"));
        drop(f);
    }
}
