#![warn(missing_docs)]
//! # KOLA — a combinator query algebra for rule-based optimizers
//!
//! Rust reproduction of Cherniack & Zdonik, *"Rule Languages and Internal
//! Algebras for Rule-Based Optimizers"*, SIGMOD 1996.
//!
//! This crate is the algebra itself: [`term::Func`], [`term::Pred`] and
//! [`term::Query`] are the variable-free combinator terms of Tables 1 and 2;
//! [`eval`] is their operational semantics over an in-memory object store
//! ([`db::Db`]); [`typecheck`] infers types; [`parse`] and the `Display`
//! impls give a concrete syntax close to the paper's notation.
//!
//! The rewrite rules, strategies and the hidden-join untangler live in the
//! `kola-rewrite` crate; the variable-based baseline algebra (AQUA) lives in
//! `kola-aqua`.
pub mod bag;
pub mod builder;
pub mod db;
pub mod display;
pub mod eval;
pub mod explain;
pub mod intern;
pub mod parse;
pub mod pattern;
pub mod schema;
pub mod term;
pub mod typecheck;
pub mod types;
pub mod value;

pub use bag::ValueBag;
pub use db::Db;
pub use eval::{eval_func, eval_pred, eval_query, EvalError, MAX_EVAL_DEPTH};
pub use intern::{query_fp, ITerm, Interner};
pub use schema::Schema;
pub use term::{Func, Pred, Query};
pub use types::{FuncType, Type};
pub use value::{Value, ValueSet};
