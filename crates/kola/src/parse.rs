//! A parser for the concrete KOLA syntax (see [`crate::display`] for the
//! operator table).
//!
//! The parser produces *patterns* ([`PFunc`], [`PPred`], [`PQuery`]) —
//! metavariables are written `$f` (function), `%p` (predicate) and `^x`
//! (object). The convenience entry points [`parse_func`], [`parse_pred`]
//! and [`parse_query`] additionally require the result to be variable-free
//! and return concrete terms.
//!
//! Reserved words: `id pi1 pi2 flat sunion sinter sdiff Kf Cf con iterate
//! iter join nest unnest eq lt leq gt geq in Kp Cp T F union intersect
//! diff`. Any other identifier is a schema primitive (in function or
//! predicate position) or an extent (in query position).
//!
//! Round-tripping: `parse_pfunc(t.to_string()) == t` for every function and
//! predicate. Query literals containing pairs or sets re-parse as
//! query-level pair/set constructions (`[1, 2]` parses as
//! `PairQ(Lit 1, Lit 2)`, not `Lit [1,2]`), which is evaluation-equivalent.

use crate::pattern::{PFunc, PPred, PQuery};
use crate::term::{Func, Pred, Query};
use crate::value::{Value, ValueSet};
use std::fmt;
use std::sync::Arc;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// String literal (without quotes).
    Str(String),
    /// `!`
    Bang,
    /// `?`
    Question,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBrack,
    /// `]`
    RBrack,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `~`
    Tilde,
    /// `@`
    At,
    /// `$` (function metavariable sigil)
    Dollar,
    /// `%` (predicate metavariable sigil)
    Percent,
    /// `^` (object metavariable sigil)
    Caret,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Int(i) => write!(f, "{i}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::Bang => write!(f, "!"),
            Tok::Question => write!(f, "?"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBrack => write!(f, "["),
            Tok::RBrack => write!(f, "]"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::Comma => write!(f, ","),
            Tok::Dot => write!(f, "."),
            Tok::Star => write!(f, "*"),
            Tok::Amp => write!(f, "&"),
            Tok::Pipe => write!(f, "|"),
            Tok::Tilde => write!(f, "~"),
            Tok::At => write!(f, "@"),
            Tok::Dollar => write!(f, "$"),
            Tok::Percent => write!(f, "%"),
            Tok::Caret => write!(f, "^"),
        }
    }
}

/// A parse error with a byte offset into the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Description of what went wrong.
    pub msg: String,
    /// Approximate token index where it went wrong.
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at token {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Tokenize a source string.
pub fn lex(src: &str) -> Result<Vec<Tok>, ParseError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '!' => {
                out.push(Tok::Bang);
                i += 1;
            }
            '?' => {
                out.push(Tok::Question);
                i += 1;
            }
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            '[' => {
                out.push(Tok::LBrack);
                i += 1;
            }
            ']' => {
                out.push(Tok::RBrack);
                i += 1;
            }
            '{' => {
                out.push(Tok::LBrace);
                i += 1;
            }
            '}' => {
                out.push(Tok::RBrace);
                i += 1;
            }
            ',' => {
                out.push(Tok::Comma);
                i += 1;
            }
            '.' => {
                out.push(Tok::Dot);
                i += 1;
            }
            '*' => {
                out.push(Tok::Star);
                i += 1;
            }
            '&' => {
                out.push(Tok::Amp);
                i += 1;
            }
            '|' => {
                out.push(Tok::Pipe);
                i += 1;
            }
            '~' => {
                out.push(Tok::Tilde);
                i += 1;
            }
            '@' => {
                out.push(Tok::At);
                i += 1;
            }
            '$' => {
                out.push(Tok::Dollar);
                i += 1;
            }
            '%' => {
                out.push(Tok::Percent);
                i += 1;
            }
            '^' => {
                out.push(Tok::Caret);
                i += 1;
            }
            '"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] as char != '"' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(ParseError {
                        msg: "unterminated string literal".into(),
                        at: out.len(),
                    });
                }
                out.push(Tok::Str(src[start..j].to_string()));
                i = j + 1;
            }
            '-' | '0'..='9' => {
                let start = i;
                i += 1;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                let n = text.parse::<i64>().map_err(|_| ParseError {
                    msg: format!("bad integer literal {text:?}"),
                    at: out.len(),
                })?;
                out.push(Tok::Int(n));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] as char == '_')
                {
                    i += 1;
                }
                out.push(Tok::Ident(src[start..i].to_string()));
            }
            other => {
                return Err(ParseError {
                    msg: format!("unexpected character {other:?}"),
                    at: out.len(),
                })
            }
        }
    }
    Ok(out)
}

const PRED_KEYWORDS: &[&str] = &["eq", "lt", "leq", "gt", "geq", "in", "Kp", "Cp", "inv"];
const FUNC_KEYWORDS: &[&str] = &[
    "id", "pi1", "pi2", "flat", "sunion", "sinter", "sdiff", "Kf", "Cf", "con", "iterate", "iter",
    "join", "nest", "unnest", "bagify", "dedup", "biterate", "bunion", "bflat",
];
const QUERY_KEYWORDS: &[&str] = &["union", "intersect", "diff", "T", "F"];

/// Recursive-descent parser with token-position backtracking.
pub struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

type PResult<T> = Result<T, ParseError>;

impl Parser {
    /// Create a parser over a source string.
    pub fn new(src: &str) -> PResult<Self> {
        Ok(Parser {
            toks: lex(src)?,
            pos: 0,
        })
    }

    fn err<T>(&self, msg: impl Into<String>) -> PResult<T> {
        Err(ParseError {
            msg: msg.into(),
            at: self.pos,
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> PResult<()> {
        if self.eat(t) {
            Ok(())
        } else {
            let found = self
                .peek()
                .map(|t| t.to_string())
                .unwrap_or_else(|| "end of input".into());
            self.err(format!("expected {t}, found {found}"))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(s)) = self.peek() {
            if s == kw {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn ident(&mut self) -> PResult<String> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => self.err(format!(
                "expected identifier, found {}",
                other.map(|t| t.to_string()).unwrap_or_else(|| "EOF".into())
            )),
        }
    }

    /// True iff all tokens were consumed.
    pub fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    // ---- functions -----------------------------------------------------

    /// Parse a function pattern (entry point).
    pub fn pfunc(&mut self) -> PResult<PFunc> {
        let a = self.pfunc_times()?;
        if self.eat(&Tok::Dot) {
            let b = self.pfunc()?;
            Ok(PFunc::Compose(Box::new(a), Box::new(b)))
        } else {
            Ok(a)
        }
    }

    fn pfunc_times(&mut self) -> PResult<PFunc> {
        let mut a = self.pfunc_atom()?;
        while self.eat(&Tok::Star) {
            let b = self.pfunc_atom()?;
            a = PFunc::Times(Box::new(a), Box::new(b));
        }
        Ok(a)
    }

    fn pfunc_atom(&mut self) -> PResult<PFunc> {
        if self.eat(&Tok::Dollar) {
            let name = self.ident()?;
            return Ok(PFunc::Var(Arc::from(name.as_str())));
        }
        if self.eat(&Tok::LParen) {
            let f = self.pfunc()?;
            if self.eat(&Tok::Comma) {
                let g = self.pfunc()?;
                self.expect(&Tok::RParen)?;
                return Ok(PFunc::PairWith(Box::new(f), Box::new(g)));
            }
            self.expect(&Tok::RParen)?;
            return Ok(f);
        }
        let name = self.ident()?;
        match name.as_str() {
            "id" => Ok(PFunc::Id),
            "pi1" => Ok(PFunc::Pi1),
            "pi2" => Ok(PFunc::Pi2),
            "flat" => Ok(PFunc::Flat),
            "sunion" => Ok(PFunc::SetUnion),
            "bagify" => Ok(PFunc::Bagify),
            "dedup" => Ok(PFunc::Dedup),
            "bunion" => Ok(PFunc::BUnion),
            "bflat" => Ok(PFunc::BFlat),
            "biterate" => {
                self.expect(&Tok::LParen)?;
                let p = self.ppred()?;
                self.expect(&Tok::Comma)?;
                let f = self.pfunc()?;
                self.expect(&Tok::RParen)?;
                Ok(PFunc::BIterate(Box::new(p), Box::new(f)))
            }
            "sinter" => Ok(PFunc::SetIntersect),
            "sdiff" => Ok(PFunc::SetDiff),
            "Kf" => {
                self.expect(&Tok::LParen)?;
                let q = self.pquery()?;
                self.expect(&Tok::RParen)?;
                Ok(PFunc::ConstF(Box::new(q)))
            }
            "Cf" => {
                self.expect(&Tok::LParen)?;
                let f = self.pfunc()?;
                self.expect(&Tok::Comma)?;
                let q = self.pquery()?;
                self.expect(&Tok::RParen)?;
                Ok(PFunc::CurryF(Box::new(f), Box::new(q)))
            }
            "con" => {
                self.expect(&Tok::LParen)?;
                let p = self.ppred()?;
                self.expect(&Tok::Comma)?;
                let f = self.pfunc()?;
                self.expect(&Tok::Comma)?;
                let g = self.pfunc()?;
                self.expect(&Tok::RParen)?;
                Ok(PFunc::Cond(Box::new(p), Box::new(f), Box::new(g)))
            }
            "iterate" | "iter" | "join" => {
                self.expect(&Tok::LParen)?;
                let p = self.ppred()?;
                self.expect(&Tok::Comma)?;
                let f = self.pfunc()?;
                self.expect(&Tok::RParen)?;
                Ok(match name.as_str() {
                    "iterate" => PFunc::Iterate(Box::new(p), Box::new(f)),
                    "iter" => PFunc::Iter(Box::new(p), Box::new(f)),
                    _ => PFunc::Join(Box::new(p), Box::new(f)),
                })
            }
            "nest" | "unnest" => {
                self.expect(&Tok::LParen)?;
                let f = self.pfunc()?;
                self.expect(&Tok::Comma)?;
                let g = self.pfunc()?;
                self.expect(&Tok::RParen)?;
                Ok(if name == "nest" {
                    PFunc::Nest(Box::new(f), Box::new(g))
                } else {
                    PFunc::Unnest(Box::new(f), Box::new(g))
                })
            }
            kw if PRED_KEYWORDS.contains(&kw) || QUERY_KEYWORDS.contains(&kw) => {
                self.err(format!("{kw} is not a function"))
            }
            prim => Ok(PFunc::Prim(Arc::from(prim))),
        }
    }

    // ---- predicates ------------------------------------------------------

    /// Parse a predicate pattern (entry point). `|` and `&` associate to
    /// the right (matching the printer; both are associative anyway).
    pub fn ppred(&mut self) -> PResult<PPred> {
        let a = self.ppred_and()?;
        if self.eat(&Tok::Pipe) {
            let b = self.ppred()?;
            return Ok(PPred::Or(Box::new(a), Box::new(b)));
        }
        Ok(a)
    }

    fn ppred_and(&mut self) -> PResult<PPred> {
        let a = self.ppred_oplus()?;
        if self.eat(&Tok::Amp) {
            let b = self.ppred_and()?;
            return Ok(PPred::And(Box::new(a), Box::new(b)));
        }
        Ok(a)
    }

    fn ppred_oplus(&mut self) -> PResult<PPred> {
        let mut a = self.ppred_unary()?;
        while self.eat(&Tok::At) {
            let f = self.pfunc_times()?;
            a = PPred::Oplus(Box::new(a), Box::new(f));
        }
        Ok(a)
    }

    fn ppred_unary(&mut self) -> PResult<PPred> {
        if self.eat(&Tok::Tilde) {
            let p = self.ppred_unary()?;
            return Ok(PPred::Not(Box::new(p)));
        }
        self.ppred_atom()
    }

    fn ppred_atom(&mut self) -> PResult<PPred> {
        if self.eat(&Tok::Percent) {
            let name = self.ident()?;
            return Ok(PPred::Var(Arc::from(name.as_str())));
        }
        if self.eat(&Tok::LParen) {
            let p = self.ppred()?;
            self.expect(&Tok::RParen)?;
            return Ok(p);
        }
        let name = self.ident()?;
        match name.as_str() {
            "eq" => Ok(PPred::Eq),
            "lt" => Ok(PPred::Lt),
            "leq" => Ok(PPred::Leq),
            "gt" => Ok(PPred::Gt),
            "geq" => Ok(PPred::Geq),
            "in" => Ok(PPred::In),
            "Kp" => {
                self.expect(&Tok::LParen)?;
                let b = match self.next() {
                    Some(Tok::Ident(s)) if s == "T" => true,
                    Some(Tok::Ident(s)) if s == "F" => false,
                    other => {
                        return self.err(format!(
                            "Kp expects T or F, found {}",
                            other.map(|t| t.to_string()).unwrap_or_else(|| "EOF".into())
                        ))
                    }
                };
                self.expect(&Tok::RParen)?;
                Ok(PPred::ConstP(b))
            }
            "Cp" => {
                self.expect(&Tok::LParen)?;
                let p = self.ppred()?;
                self.expect(&Tok::Comma)?;
                let q = self.pquery()?;
                self.expect(&Tok::RParen)?;
                Ok(PPred::CurryP(Box::new(p), Box::new(q)))
            }
            "inv" => {
                self.expect(&Tok::LParen)?;
                let p = self.ppred()?;
                self.expect(&Tok::RParen)?;
                Ok(PPred::Conv(Box::new(p)))
            }
            kw if FUNC_KEYWORDS.contains(&kw) || QUERY_KEYWORDS.contains(&kw) => {
                self.err(format!("{kw} is not a predicate"))
            }
            prim => Ok(PPred::PrimP(Arc::from(prim))),
        }
    }

    // ---- queries -----------------------------------------------------------

    /// Parse a query pattern (entry point).
    pub fn pquery(&mut self) -> PResult<PQuery> {
        let mut a = self.pquery_app()?;
        loop {
            if self.eat_kw("union") {
                let b = self.pquery_app()?;
                a = PQuery::Union(Box::new(a), Box::new(b));
            } else if self.eat_kw("intersect") {
                let b = self.pquery_app()?;
                a = PQuery::Intersect(Box::new(a), Box::new(b));
            } else if self.eat_kw("diff") {
                let b = self.pquery_app()?;
                a = PQuery::Diff(Box::new(a), Box::new(b));
            } else {
                return Ok(a);
            }
        }
    }

    fn pquery_app(&mut self) -> PResult<PQuery> {
        // Try `func ! query` first.
        let save = self.pos;
        if let Ok(f) = self.pfunc() {
            if self.eat(&Tok::Bang) {
                let q = self.pquery_app()?;
                return Ok(PQuery::App(f, Box::new(q)));
            }
        }
        self.pos = save;
        // Then `pred ? query`.
        if let Ok(p) = self.ppred() {
            if self.eat(&Tok::Question) {
                let q = self.pquery_app()?;
                return Ok(PQuery::Test(p, Box::new(q)));
            }
        }
        self.pos = save;
        self.pquery_atom()
    }

    fn pquery_atom(&mut self) -> PResult<PQuery> {
        if self.eat(&Tok::Caret) {
            let name = self.ident()?;
            return Ok(PQuery::Var(Arc::from(name.as_str())));
        }
        match self.peek().cloned() {
            Some(Tok::Int(n)) => {
                self.pos += 1;
                Ok(PQuery::Lit(Value::Int(n)))
            }
            Some(Tok::Str(s)) => {
                self.pos += 1;
                Ok(PQuery::Lit(Value::str(&s)))
            }
            Some(Tok::LBrack) => {
                self.pos += 1;
                let a = self.pquery()?;
                self.expect(&Tok::Comma)?;
                let b = self.pquery()?;
                self.expect(&Tok::RBrack)?;
                // Canonicalize literal pairs so printing round-trips: the
                // display of Lit([x, y]) is "[x, y]".
                if let (PQuery::Lit(x), PQuery::Lit(y)) = (&a, &b) {
                    return Ok(PQuery::Lit(Value::pair(x.clone(), y.clone())));
                }
                Ok(PQuery::PairQ(Box::new(a), Box::new(b)))
            }
            Some(Tok::LBrace) => {
                self.pos += 1;
                let mut set = ValueSet::new();
                if !self.eat(&Tok::RBrace) {
                    loop {
                        set.insert(self.value()?);
                        if self.eat(&Tok::RBrace) {
                            break;
                        }
                        self.expect(&Tok::Comma)?;
                    }
                }
                Ok(PQuery::Lit(Value::Set(set)))
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                if self.eat(&Tok::RParen) {
                    return Ok(PQuery::Lit(Value::Unit));
                }
                let q = self.pquery()?;
                self.expect(&Tok::RParen)?;
                Ok(q)
            }
            Some(Tok::Ident(s)) if s == "T" => {
                self.pos += 1;
                Ok(PQuery::Lit(Value::Bool(true)))
            }
            Some(Tok::Ident(s)) if s == "F" => {
                self.pos += 1;
                Ok(PQuery::Lit(Value::Bool(false)))
            }
            Some(Tok::Ident(s))
                if !FUNC_KEYWORDS.contains(&s.as_str())
                    && !PRED_KEYWORDS.contains(&s.as_str())
                    && !QUERY_KEYWORDS.contains(&s.as_str()) =>
            {
                self.pos += 1;
                Ok(PQuery::Extent(Arc::from(s.as_str())))
            }
            other => self.err(format!(
                "expected query, found {}",
                other.map(|t| t.to_string()).unwrap_or_else(|| "EOF".into())
            )),
        }
    }

    /// Parse a *value* literal (inside set braces).
    fn value(&mut self) -> PResult<Value> {
        match self.next() {
            Some(Tok::Int(n)) => Ok(Value::Int(n)),
            Some(Tok::Str(s)) => Ok(Value::str(&s)),
            Some(Tok::Ident(s)) if s == "T" => Ok(Value::Bool(true)),
            Some(Tok::Ident(s)) if s == "F" => Ok(Value::Bool(false)),
            Some(Tok::LBrack) => {
                let a = self.value()?;
                self.expect(&Tok::Comma)?;
                let b = self.value()?;
                self.expect(&Tok::RBrack)?;
                Ok(Value::pair(a, b))
            }
            Some(Tok::LBrace) => {
                let mut set = ValueSet::new();
                if !self.eat(&Tok::RBrace) {
                    loop {
                        set.insert(self.value()?);
                        if self.eat(&Tok::RBrace) {
                            break;
                        }
                        self.expect(&Tok::Comma)?;
                    }
                }
                Ok(Value::Set(set))
            }
            Some(Tok::LParen) => {
                self.expect(&Tok::RParen)?;
                Ok(Value::Unit)
            }
            other => self.err(format!(
                "expected value literal, found {}",
                other.map(|t| t.to_string()).unwrap_or_else(|| "EOF".into())
            )),
        }
    }
}

fn parse_complete<T>(src: &str, f: impl FnOnce(&mut Parser) -> PResult<T>) -> PResult<T> {
    let mut p = Parser::new(src)?;
    let t = f(&mut p)?;
    if !p.at_end() {
        return p.err("trailing input");
    }
    Ok(t)
}

/// Parse a function pattern (may contain metavariables).
pub fn parse_pfunc(src: &str) -> PResult<PFunc> {
    parse_complete(src, Parser::pfunc)
}

/// Parse a predicate pattern (may contain metavariables).
pub fn parse_ppred(src: &str) -> PResult<PPred> {
    parse_complete(src, Parser::ppred)
}

/// Parse a query pattern (may contain metavariables).
pub fn parse_pquery(src: &str) -> PResult<PQuery> {
    parse_complete(src, Parser::pquery)
}

fn no_vars() -> ParseError {
    ParseError {
        msg: "metavariables not allowed in a concrete term".into(),
        at: 0,
    }
}

/// Parse a concrete (variable-free) function.
///
/// ```
/// use kola::parse::parse_func;
/// // Composition is `.`, pairing is `(f, g)`, product is `*`.
/// let f = parse_func("nest(pi1, pi2) . unnest(pi1, pi2) * id").unwrap();
/// assert_eq!(parse_func(&f.to_string()).unwrap(), f);
/// ```
pub fn parse_func(src: &str) -> PResult<Func> {
    let p = parse_pfunc(src)?;
    p.to_concrete().ok_or_else(no_vars)
}

/// Parse a concrete (variable-free) predicate.
pub fn parse_pred(src: &str) -> PResult<Pred> {
    let p = parse_ppred(src)?;
    p.to_concrete().ok_or_else(no_vars)
}

/// Parse a concrete (variable-free) query.
///
/// ```
/// use kola::parse::parse_query;
/// let q = parse_query("iterate(gt @ (age, Kf(25)), age) ! P").unwrap();
/// assert_eq!(q.to_string(), "iterate(gt @ (age, Kf(25)), age) ! P");
/// assert!(parse_query("not a query ! (").is_err());
/// ```
pub fn parse_query(src: &str) -> PResult<Query> {
    let p = parse_pquery(src)?;
    p.to_concrete().ok_or_else(no_vars)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;

    #[test]
    fn parse_simple_funcs() {
        assert_eq!(parse_func("id").unwrap(), id());
        assert_eq!(parse_func("pi1 . pi2").unwrap(), o(pi1(), pi2()));
        assert_eq!(
            parse_func("a . b . c").unwrap(),
            o(prim("a"), o(prim("b"), prim("c")))
        );
        assert_eq!(
            parse_func("(a . b) . c").unwrap(),
            o(o(prim("a"), prim("b")), prim("c"))
        );
    }

    #[test]
    fn parse_formers() {
        assert_eq!(parse_func("Kf(25)").unwrap(), kf(25));
        assert_eq!(parse_func("Kf(P)").unwrap(), kf(ext("P")));
        assert_eq!(
            parse_func("(id, Kf(P))").unwrap(),
            pairf(id(), kf(ext("P")))
        );
        assert_eq!(
            parse_func("iterate(Kp(T), city . addr)").unwrap(),
            iterate(kp(true), o(prim("city"), prim("addr")))
        );
        assert_eq!(
            parse_func("con(gt, pi1, pi2)").unwrap(),
            con(gt(), pi1(), pi2())
        );
        assert_eq!(parse_func("Cf(pi1, 3)").unwrap(), cf(pi1(), 3));
    }

    #[test]
    fn parse_preds() {
        assert_eq!(parse_pred("gt").unwrap(), gt());
        assert_eq!(parse_pred("~gt").unwrap(), not(gt()));
        assert_eq!(
            parse_pred("gt @ (age, Kf(25))").unwrap(),
            oplus(gt(), pairf(prim("age"), kf(25)))
        );
        assert_eq!(
            parse_pred("Kp(T) & Kp(F)").unwrap(),
            and(kp(true), kp(false))
        );
        assert_eq!(
            parse_pred("Cp(leq, 25) @ age").unwrap(),
            oplus(cp(leq(), 25), prim("age"))
        );
        assert_eq!(parse_pred("eq | in").unwrap(), or(eq(), isin()));
    }

    #[test]
    fn precedence_not_tighter_than_oplus() {
        assert_eq!(parse_pred("~leq @ pi1").unwrap(), oplus(not(leq()), pi1()));
        assert_eq!(
            parse_pred("~(leq @ pi1)").unwrap(),
            not(oplus(leq(), pi1()))
        );
    }

    #[test]
    fn parse_queries() {
        assert_eq!(parse_query("P").unwrap(), ext("P"));
        assert_eq!(
            parse_query("iterate(Kp(T), age) ! P").unwrap(),
            app(iterate(kp(true), prim("age")), ext("P"))
        );
        assert_eq!(parse_query("[V, P]").unwrap(), pairq(ext("V"), ext("P")));
        assert_eq!(
            parse_query("A union B intersect C").unwrap(),
            intersect(union(ext("A"), ext("B")), ext("C"))
        );
        assert_eq!(
            parse_query("gt ? [3, 2]").unwrap(),
            // Literal pairs canonicalize to a single literal.
            test(gt(), lit(Value::pair(Value::Int(3), Value::Int(2))))
        );
        assert_eq!(
            parse_query("{1, 2, 3}").unwrap(),
            lit(Value::set([Value::Int(1), Value::Int(2), Value::Int(3)]))
        );
        assert_eq!(parse_query("()").unwrap(), lit(Value::Unit));
    }

    #[test]
    fn parse_patterns() {
        use crate::pattern::*;
        use std::sync::Arc;
        assert_eq!(
            parse_pfunc("$f . $g").unwrap(),
            PFunc::Compose(
                Box::new(PFunc::Var(Arc::from("f"))),
                Box::new(PFunc::Var(Arc::from("g")))
            )
        );
        assert_eq!(
            parse_ppred("%p @ $f").unwrap(),
            PPred::Oplus(
                Box::new(PPred::Var(Arc::from("p"))),
                Box::new(PFunc::Var(Arc::from("f")))
            )
        );
        assert_eq!(
            parse_pquery("Kf(^B) ! ^A").unwrap(),
            PQuery::App(
                PFunc::ConstF(Box::new(PQuery::Var(Arc::from("B")))),
                Box::new(PQuery::Var(Arc::from("A")))
            )
        );
    }

    #[test]
    fn concrete_rejects_vars() {
        assert!(parse_func("$f").is_err());
        assert!(parse_pred("%p").is_err());
        assert!(parse_query("^x").is_err());
    }

    #[test]
    fn garage_query_kg2_parses() {
        let src = "nest(pi1, pi2) . unnest(pi1, pi2) * id . \
                   (join(in @ id * cars, id * grgs), pi1) ! [V, P]";
        let q = parse_query(src).unwrap();
        assert_eq!(q.to_string(), src);
    }

    #[test]
    fn errors() {
        assert!(parse_func("iterate(Kp(T)").is_err());
        assert!(parse_func("union").is_err()); // query keyword in func position
        assert!(parse_pred("id").is_err()); // func keyword in pred position
        assert!(parse_query("P union").is_err());
        assert!(parse_query(r#""unterminated"#).is_err());
        assert!(parse_func("f . . g").is_err());
        assert!(parse_query("P trailing").is_err());
    }

    #[test]
    fn print_parse_round_trip_spot_checks() {
        for src in [
            "iterate(Kp(T), (id, flat . iter(Kp(T), grgs . pi2) . (id, Kf(P)))) ! V",
            "con(Cp(leq, 25) @ age, child, Kf({}))",
            "gt @ (age . pi1, Kf(25))",
            "nest(pi1, pi2) . (join(Kp(T), id), pi1) ! [A, B]",
        ] {
            let q1 = Parser::new(src).unwrap();
            drop(q1);
            // Try each entry point; at least one must succeed and round-trip.
            if let Ok(f) = parse_func(src) {
                assert_eq!(parse_func(&f.to_string()).unwrap(), f);
            } else if let Ok(p) = parse_pred(src) {
                assert_eq!(parse_pred(&p.to_string()).unwrap(), p);
            } else {
                let q = parse_query(src).unwrap();
                assert_eq!(parse_query(&q.to_string()).unwrap(), q);
            }
        }
    }
}
