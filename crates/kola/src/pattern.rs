//! Pattern terms: KOLA terms with typed metavariables.
//!
//! A rewrite rule's head and body are *patterns* — terms of the algebra in
//! which metavariables stand for arbitrary functions (`$f`), predicates
//! (`%p`) or objects (`^x`). The paper's rules are written exactly this way
//! (its `f, g, h, j / p, q / x, y, A, B` convention); we make the variable
//! kind explicit with a sigil so the concrete syntax is unambiguous.
//!
//! Patterns mirror [`Func`]/[`Pred`]/[`Query`] constructor-for-constructor.
//! A pattern with no variables converts losslessly to a concrete term
//! ([`PFunc::to_concrete`] etc.), and every concrete term embeds into a
//! pattern ([`PFunc::from_concrete`]). Matching and rule application live in
//! the `kola-rewrite` crate.

use crate::term::{Func, Pred, Query};
use crate::value::{Sym, Value};

/// The kind of a metavariable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum VarKind {
    /// A function variable, written `$f`.
    Func,
    /// A predicate variable, written `%p`.
    Pred,
    /// An object (query) variable, written `^x`.
    Obj,
}

/// A function pattern.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PFunc {
    /// A function metavariable `$name`.
    Var(Sym),
    /// See [`Func::Id`].
    Id,
    /// See [`Func::Pi1`].
    Pi1,
    /// See [`Func::Pi2`].
    Pi2,
    /// See [`Func::Prim`].
    Prim(Sym),
    /// See [`Func::Compose`].
    Compose(Box<PFunc>, Box<PFunc>),
    /// See [`Func::PairWith`].
    PairWith(Box<PFunc>, Box<PFunc>),
    /// See [`Func::Times`].
    Times(Box<PFunc>, Box<PFunc>),
    /// See [`Func::ConstF`].
    ConstF(Box<PQuery>),
    /// See [`Func::CurryF`].
    CurryF(Box<PFunc>, Box<PQuery>),
    /// See [`Func::Cond`].
    Cond(Box<PPred>, Box<PFunc>, Box<PFunc>),
    /// See [`Func::Flat`].
    Flat,
    /// See [`Func::Iterate`].
    Iterate(Box<PPred>, Box<PFunc>),
    /// See [`Func::Iter`].
    Iter(Box<PPred>, Box<PFunc>),
    /// See [`Func::Join`].
    Join(Box<PPred>, Box<PFunc>),
    /// See [`Func::Nest`].
    Nest(Box<PFunc>, Box<PFunc>),
    /// See [`Func::Unnest`].
    Unnest(Box<PFunc>, Box<PFunc>),
    /// See [`Func::Bagify`].
    Bagify,
    /// See [`Func::Dedup`].
    Dedup,
    /// See [`Func::BIterate`].
    BIterate(Box<PPred>, Box<PFunc>),
    /// See [`Func::BUnion`].
    BUnion,
    /// See [`Func::BFlat`].
    BFlat,
    /// See [`Func::SetUnion`].
    SetUnion,
    /// See [`Func::SetIntersect`].
    SetIntersect,
    /// See [`Func::SetDiff`].
    SetDiff,
}

/// A predicate pattern.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PPred {
    /// A predicate metavariable `%name`.
    Var(Sym),
    /// See [`Pred::Eq`].
    Eq,
    /// See [`Pred::Lt`].
    Lt,
    /// See [`Pred::Leq`].
    Leq,
    /// See [`Pred::Gt`].
    Gt,
    /// See [`Pred::Geq`].
    Geq,
    /// See [`Pred::In`].
    In,
    /// See [`Pred::PrimP`].
    PrimP(Sym),
    /// See [`Pred::Oplus`].
    Oplus(Box<PPred>, Box<PFunc>),
    /// See [`Pred::And`].
    And(Box<PPred>, Box<PPred>),
    /// See [`Pred::Or`].
    Or(Box<PPred>, Box<PPred>),
    /// See [`Pred::Not`].
    Not(Box<PPred>),
    /// See [`Pred::Conv`].
    Conv(Box<PPred>),
    /// See [`Pred::ConstP`].
    ConstP(bool),
    /// See [`Pred::CurryP`].
    CurryP(Box<PPred>, Box<PQuery>),
}

/// A query (object-level) pattern.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PQuery {
    /// An object metavariable `^name`.
    Var(Sym),
    /// See [`Query::Lit`].
    Lit(Value),
    /// See [`Query::Extent`].
    Extent(Sym),
    /// See [`Query::PairQ`].
    PairQ(Box<PQuery>, Box<PQuery>),
    /// See [`Query::App`].
    App(PFunc, Box<PQuery>),
    /// See [`Query::Test`].
    Test(PPred, Box<PQuery>),
    /// See [`Query::Union`].
    Union(Box<PQuery>, Box<PQuery>),
    /// See [`Query::Intersect`].
    Intersect(Box<PQuery>, Box<PQuery>),
    /// See [`Query::Diff`].
    Diff(Box<PQuery>, Box<PQuery>),
}

macro_rules! map2 {
    ($ctor:path, $a:expr, $b:expr) => {
        $ctor(Box::new($a), Box::new($b))
    };
}

impl PFunc {
    /// Embed a concrete function as a (variable-free) pattern.
    pub fn from_concrete(f: &Func) -> PFunc {
        match f {
            Func::Id => PFunc::Id,
            Func::Pi1 => PFunc::Pi1,
            Func::Pi2 => PFunc::Pi2,
            Func::Prim(s) => PFunc::Prim(s.clone()),
            Func::Compose(a, b) => map2!(
                PFunc::Compose,
                Self::from_concrete(a),
                Self::from_concrete(b)
            ),
            Func::PairWith(a, b) => map2!(
                PFunc::PairWith,
                Self::from_concrete(a),
                Self::from_concrete(b)
            ),
            Func::Times(a, b) => {
                map2!(PFunc::Times, Self::from_concrete(a), Self::from_concrete(b))
            }
            Func::ConstF(q) => PFunc::ConstF(Box::new(PQuery::from_concrete(q))),
            Func::CurryF(f, q) => PFunc::CurryF(
                Box::new(Self::from_concrete(f)),
                Box::new(PQuery::from_concrete(q)),
            ),
            Func::Cond(p, f, g) => PFunc::Cond(
                Box::new(PPred::from_concrete(p)),
                Box::new(Self::from_concrete(f)),
                Box::new(Self::from_concrete(g)),
            ),
            Func::Flat => PFunc::Flat,
            Func::Iterate(p, f) => map2!(
                PFunc::Iterate,
                PPred::from_concrete(p),
                Self::from_concrete(f)
            ),
            Func::Iter(p, f) => {
                map2!(PFunc::Iter, PPred::from_concrete(p), Self::from_concrete(f))
            }
            Func::Join(p, f) => {
                map2!(PFunc::Join, PPred::from_concrete(p), Self::from_concrete(f))
            }
            Func::Nest(f, g) => {
                map2!(PFunc::Nest, Self::from_concrete(f), Self::from_concrete(g))
            }
            Func::Unnest(f, g) => map2!(
                PFunc::Unnest,
                Self::from_concrete(f),
                Self::from_concrete(g)
            ),
            Func::Bagify => PFunc::Bagify,
            Func::Dedup => PFunc::Dedup,
            Func::BUnion => PFunc::BUnion,
            Func::BFlat => PFunc::BFlat,
            Func::BIterate(p, f) => map2!(
                PFunc::BIterate,
                PPred::from_concrete(p),
                Self::from_concrete(f)
            ),
            Func::SetUnion => PFunc::SetUnion,
            Func::SetIntersect => PFunc::SetIntersect,
            Func::SetDiff => PFunc::SetDiff,
        }
    }

    /// Convert to a concrete function; `None` if any metavariable occurs.
    pub fn to_concrete(&self) -> Option<Func> {
        Some(match self {
            PFunc::Var(_) => return None,
            PFunc::Id => Func::Id,
            PFunc::Pi1 => Func::Pi1,
            PFunc::Pi2 => Func::Pi2,
            PFunc::Prim(s) => Func::Prim(s.clone()),
            PFunc::Compose(a, b) => {
                map2!(Func::Compose, a.to_concrete()?, b.to_concrete()?)
            }
            PFunc::PairWith(a, b) => {
                map2!(Func::PairWith, a.to_concrete()?, b.to_concrete()?)
            }
            PFunc::Times(a, b) => map2!(Func::Times, a.to_concrete()?, b.to_concrete()?),
            PFunc::ConstF(q) => Func::ConstF(Box::new(q.to_concrete()?)),
            PFunc::CurryF(f, q) => {
                Func::CurryF(Box::new(f.to_concrete()?), Box::new(q.to_concrete()?))
            }
            PFunc::Cond(p, f, g) => Func::Cond(
                Box::new(p.to_concrete()?),
                Box::new(f.to_concrete()?),
                Box::new(g.to_concrete()?),
            ),
            PFunc::Flat => Func::Flat,
            PFunc::Iterate(p, f) => map2!(Func::Iterate, p.to_concrete()?, f.to_concrete()?),
            PFunc::Iter(p, f) => map2!(Func::Iter, p.to_concrete()?, f.to_concrete()?),
            PFunc::Join(p, f) => map2!(Func::Join, p.to_concrete()?, f.to_concrete()?),
            PFunc::Nest(f, g) => map2!(Func::Nest, f.to_concrete()?, g.to_concrete()?),
            PFunc::Unnest(f, g) => map2!(Func::Unnest, f.to_concrete()?, g.to_concrete()?),
            PFunc::Bagify => Func::Bagify,
            PFunc::Dedup => Func::Dedup,
            PFunc::BUnion => Func::BUnion,
            PFunc::BFlat => Func::BFlat,
            PFunc::BIterate(p, f) => map2!(Func::BIterate, p.to_concrete()?, f.to_concrete()?),
            PFunc::SetUnion => Func::SetUnion,
            PFunc::SetIntersect => Func::SetIntersect,
            PFunc::SetDiff => Func::SetDiff,
        })
    }

    /// Collect the metavariables occurring in this pattern into `out`.
    pub fn vars(&self, out: &mut Vec<(VarKind, Sym)>) {
        match self {
            PFunc::Var(v) => out.push((VarKind::Func, v.clone())),
            PFunc::Compose(a, b) | PFunc::PairWith(a, b) | PFunc::Times(a, b) => {
                a.vars(out);
                b.vars(out);
            }
            PFunc::ConstF(q) => q.vars(out),
            PFunc::CurryF(f, q) => {
                f.vars(out);
                q.vars(out);
            }
            PFunc::Cond(p, f, g) => {
                p.vars(out);
                f.vars(out);
                g.vars(out);
            }
            PFunc::Iterate(p, f)
            | PFunc::Iter(p, f)
            | PFunc::Join(p, f)
            | PFunc::BIterate(p, f) => {
                p.vars(out);
                f.vars(out);
            }
            PFunc::Nest(f, g) | PFunc::Unnest(f, g) => {
                f.vars(out);
                g.vars(out);
            }
            _ => {}
        }
    }
}

impl PPred {
    /// Embed a concrete predicate as a pattern.
    pub fn from_concrete(p: &Pred) -> PPred {
        match p {
            Pred::Eq => PPred::Eq,
            Pred::Lt => PPred::Lt,
            Pred::Leq => PPred::Leq,
            Pred::Gt => PPred::Gt,
            Pred::Geq => PPred::Geq,
            Pred::In => PPred::In,
            Pred::PrimP(s) => PPred::PrimP(s.clone()),
            Pred::Oplus(p, f) => map2!(
                PPred::Oplus,
                Self::from_concrete(p),
                PFunc::from_concrete(f)
            ),
            Pred::And(p, q) => {
                map2!(PPred::And, Self::from_concrete(p), Self::from_concrete(q))
            }
            Pred::Or(p, q) => map2!(PPred::Or, Self::from_concrete(p), Self::from_concrete(q)),
            Pred::Not(p) => PPred::Not(Box::new(Self::from_concrete(p))),
            Pred::Conv(p) => PPred::Conv(Box::new(Self::from_concrete(p))),
            Pred::ConstP(b) => PPred::ConstP(*b),
            Pred::CurryP(p, q) => PPred::CurryP(
                Box::new(Self::from_concrete(p)),
                Box::new(PQuery::from_concrete(q)),
            ),
        }
    }

    /// Convert to a concrete predicate; `None` if any metavariable occurs.
    pub fn to_concrete(&self) -> Option<Pred> {
        Some(match self {
            PPred::Var(_) => return None,
            PPred::Eq => Pred::Eq,
            PPred::Lt => Pred::Lt,
            PPred::Leq => Pred::Leq,
            PPred::Gt => Pred::Gt,
            PPred::Geq => Pred::Geq,
            PPred::In => Pred::In,
            PPred::PrimP(s) => Pred::PrimP(s.clone()),
            PPred::Oplus(p, f) => map2!(Pred::Oplus, p.to_concrete()?, f.to_concrete()?),
            PPred::And(p, q) => map2!(Pred::And, p.to_concrete()?, q.to_concrete()?),
            PPred::Or(p, q) => map2!(Pred::Or, p.to_concrete()?, q.to_concrete()?),
            PPred::Not(p) => Pred::Not(Box::new(p.to_concrete()?)),
            PPred::Conv(p) => Pred::Conv(Box::new(p.to_concrete()?)),
            PPred::ConstP(b) => Pred::ConstP(*b),
            PPred::CurryP(p, q) => {
                Pred::CurryP(Box::new(p.to_concrete()?), Box::new(q.to_concrete()?))
            }
        })
    }

    /// Collect the metavariables occurring in this pattern into `out`.
    pub fn vars(&self, out: &mut Vec<(VarKind, Sym)>) {
        match self {
            PPred::Var(v) => out.push((VarKind::Pred, v.clone())),
            PPred::Oplus(p, f) => {
                p.vars(out);
                f.vars(out);
            }
            PPred::And(p, q) | PPred::Or(p, q) => {
                p.vars(out);
                q.vars(out);
            }
            PPred::Not(p) | PPred::Conv(p) => p.vars(out),
            PPred::CurryP(p, q) => {
                p.vars(out);
                q.vars(out);
            }
            _ => {}
        }
    }
}

impl PQuery {
    /// Embed a concrete query as a pattern.
    pub fn from_concrete(q: &Query) -> PQuery {
        match q {
            Query::Lit(v) => PQuery::Lit(v.clone()),
            Query::Extent(s) => PQuery::Extent(s.clone()),
            Query::PairQ(a, b) => map2!(
                PQuery::PairQ,
                Self::from_concrete(a),
                Self::from_concrete(b)
            ),
            Query::App(f, q) => {
                PQuery::App(PFunc::from_concrete(f), Box::new(Self::from_concrete(q)))
            }
            Query::Test(p, q) => {
                PQuery::Test(PPred::from_concrete(p), Box::new(Self::from_concrete(q)))
            }
            Query::Union(a, b) => map2!(
                PQuery::Union,
                Self::from_concrete(a),
                Self::from_concrete(b)
            ),
            Query::Intersect(a, b) => map2!(
                PQuery::Intersect,
                Self::from_concrete(a),
                Self::from_concrete(b)
            ),
            Query::Diff(a, b) => {
                map2!(PQuery::Diff, Self::from_concrete(a), Self::from_concrete(b))
            }
        }
    }

    /// Convert to a concrete query; `None` if any metavariable occurs.
    pub fn to_concrete(&self) -> Option<Query> {
        Some(match self {
            PQuery::Var(_) => return None,
            PQuery::Lit(v) => Query::Lit(v.clone()),
            PQuery::Extent(s) => Query::Extent(s.clone()),
            PQuery::PairQ(a, b) => map2!(Query::PairQ, a.to_concrete()?, b.to_concrete()?),
            PQuery::App(f, q) => Query::App(f.to_concrete()?, Box::new(q.to_concrete()?)),
            PQuery::Test(p, q) => Query::Test(p.to_concrete()?, Box::new(q.to_concrete()?)),
            PQuery::Union(a, b) => map2!(Query::Union, a.to_concrete()?, b.to_concrete()?),
            PQuery::Intersect(a, b) => {
                map2!(Query::Intersect, a.to_concrete()?, b.to_concrete()?)
            }
            PQuery::Diff(a, b) => map2!(Query::Diff, a.to_concrete()?, b.to_concrete()?),
        })
    }

    /// Collect the metavariables occurring in this pattern into `out`.
    pub fn vars(&self, out: &mut Vec<(VarKind, Sym)>) {
        match self {
            PQuery::Var(v) => out.push((VarKind::Obj, v.clone())),
            PQuery::PairQ(a, b)
            | PQuery::Union(a, b)
            | PQuery::Intersect(a, b)
            | PQuery::Diff(a, b) => {
                a.vars(out);
                b.vars(out);
            }
            PQuery::App(f, q) => {
                f.vars(out);
                q.vars(out);
            }
            PQuery::Test(p, q) => {
                p.vars(out);
                q.vars(out);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use std::sync::Arc;

    #[test]
    fn round_trip_concrete() {
        let f = iterate(kp(true), o(prim("city"), prim("addr")));
        let p = PFunc::from_concrete(&f);
        assert_eq!(p.to_concrete().unwrap(), f);
    }

    #[test]
    fn vars_block_concretization() {
        let p = PFunc::Compose(Box::new(PFunc::Var(Arc::from("f"))), Box::new(PFunc::Id));
        assert!(p.to_concrete().is_none());
        let mut vs = vec![];
        p.vars(&mut vs);
        assert_eq!(vs, vec![(VarKind::Func, Arc::from("f"))]);
    }

    #[test]
    fn vars_collects_across_kinds() {
        let p = PFunc::Iterate(
            Box::new(PPred::Var(Arc::from("p"))),
            Box::new(PFunc::ConstF(Box::new(PQuery::Var(Arc::from("b"))))),
        );
        let mut vs = vec![];
        p.vars(&mut vs);
        assert_eq!(
            vs,
            vec![
                (VarKind::Pred, Arc::from("p")),
                (VarKind::Obj, Arc::from("b"))
            ]
        );
    }

    #[test]
    fn query_round_trip() {
        let q = app(iterate(kp(true), id()), ext("P"));
        let p = PQuery::from_concrete(&q);
        assert_eq!(p.to_concrete().unwrap(), q);
    }
}
