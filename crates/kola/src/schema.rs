//! Schemas: the abstract data types (ADTs) that schema primitives come from.
//!
//! §2.1 of the paper assumes a schema with `Person` (attributes `addr`,
//! `age`, `child`, `cars`, `grgs`), `Address` (`city`) and `Vehicle`. KOLA
//! imports every attribute of every class as a primitive function (and every
//! boolean attribute as a primitive predicate).
//!
//! Attribute names are required to be unique *across* the schema so that a
//! primitive can be named without qualifying its class — this matches how the
//! paper writes `age`, `addr`, `city` bare.

use crate::types::Type;
use crate::value::{ClassId, Sym};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// One attribute of a class: a named, typed field.
#[derive(Debug, Clone)]
pub struct Attr {
    /// Attribute name (globally unique within the schema).
    pub name: Sym,
    /// The attribute's value type.
    pub ty: Type,
}

/// A class (ADT) in the schema.
#[derive(Debug, Clone)]
pub struct Class {
    /// Class name, e.g. `Person`.
    pub name: Sym,
    /// The class's attributes, in declaration order.
    pub attrs: Vec<Attr>,
}

/// A database schema: a set of classes plus a resolved attribute index.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    classes: Vec<Class>,
    /// attribute name -> (owning class, attribute position)
    attr_index: BTreeMap<Sym, (ClassId, usize)>,
    class_index: BTreeMap<Sym, ClassId>,
}

/// Errors raised while constructing a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// Two attributes (possibly in different classes) share a name.
    DuplicateAttr(Sym),
    /// Two classes share a name.
    DuplicateClass(Sym),
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::DuplicateAttr(a) => write!(f, "duplicate attribute name: {a}"),
            SchemaError::DuplicateClass(c) => write!(f, "duplicate class name: {c}"),
        }
    }
}

impl std::error::Error for SchemaError {}

impl Schema {
    /// An empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a class with the given attributes. Returns its [`ClassId`].
    pub fn add_class(
        &mut self,
        name: &str,
        attrs: Vec<(&str, Type)>,
    ) -> Result<ClassId, SchemaError> {
        let cname: Sym = Arc::from(name);
        if self.class_index.contains_key(&cname) {
            return Err(SchemaError::DuplicateClass(cname));
        }
        let id = ClassId(self.classes.len() as u16);
        let mut built = Vec::with_capacity(attrs.len());
        for (pos, (aname, ty)) in attrs.into_iter().enumerate() {
            let aname: Sym = Arc::from(aname);
            if self.attr_index.contains_key(&aname) {
                return Err(SchemaError::DuplicateAttr(aname));
            }
            self.attr_index.insert(aname.clone(), (id, pos));
            built.push(Attr { name: aname, ty });
        }
        self.class_index.insert(cname.clone(), id);
        self.classes.push(Class {
            name: cname,
            attrs: built,
        });
        Ok(id)
    }

    /// Look up a class by name.
    pub fn class_id(&self, name: &str) -> Option<ClassId> {
        self.class_index.get(name).copied()
    }

    /// Borrow a class's definition.
    pub fn class(&self, id: ClassId) -> &Class {
        &self.classes[id.0 as usize]
    }

    /// All classes, in id order.
    pub fn classes(&self) -> &[Class] {
        &self.classes
    }

    /// Resolve an attribute name to its owning class and position.
    pub fn attr(&self, name: &str) -> Option<(ClassId, usize, &Attr)> {
        let (cid, pos) = *self.attr_index.get(name)?;
        Some((cid, pos, &self.classes[cid.0 as usize].attrs[pos]))
    }

    /// The standard schema of the paper's examples (§2.1):
    /// `Person { addr: Address, age: int, child: {Person}, cars: {Vehicle},
    /// grgs: {Address} }`, `Address { city: str }`,
    /// `Vehicle { make: str, year: int }`.
    ///
    /// Class ids are allocated in the order Person, Address, Vehicle.
    pub fn paper_schema() -> Schema {
        let mut s = Schema::new();
        // Ids are fixed by insertion order; Person refers to Address and
        // Vehicle, so reserve their ids up front.
        let person = ClassId(0);
        let address = ClassId(1);
        let vehicle = ClassId(2);
        let got_person = s
            .add_class(
                "Person",
                vec![
                    ("addr", Type::Obj(address)),
                    ("age", Type::Int),
                    ("name", Type::Str),
                    ("child", Type::set(Type::Obj(person))),
                    ("cars", Type::set(Type::Obj(vehicle))),
                    ("grgs", Type::set(Type::Obj(address))),
                ],
            )
            .expect("fresh schema");
        let got_address = s
            .add_class("Address", vec![("city", Type::Str), ("zip", Type::Int)])
            .expect("fresh schema");
        let got_vehicle = s
            .add_class("Vehicle", vec![("make", Type::Str), ("year", Type::Int)])
            .expect("fresh schema");
        debug_assert_eq!(got_person, person);
        debug_assert_eq!(got_address, address);
        debug_assert_eq!(got_vehicle, vehicle);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_schema_resolves_attributes() {
        let s = Schema::paper_schema();
        let (cid, pos, attr) = s.attr("age").unwrap();
        assert_eq!(cid, s.class_id("Person").unwrap());
        assert_eq!(pos, 1);
        assert_eq!(attr.ty, Type::Int);

        let (cid, _, attr) = s.attr("city").unwrap();
        assert_eq!(cid, s.class_id("Address").unwrap());
        assert_eq!(attr.ty, Type::Str);
    }

    #[test]
    fn attribute_names_globally_unique() {
        let mut s = Schema::new();
        s.add_class("A", vec![("x", Type::Int)]).unwrap();
        let err = s.add_class("B", vec![("x", Type::Bool)]);
        assert_eq!(err.unwrap_err(), SchemaError::DuplicateAttr(Arc::from("x")));
    }

    #[test]
    fn class_names_unique() {
        let mut s = Schema::new();
        s.add_class("A", vec![]).unwrap();
        let err = s.add_class("A", vec![]);
        assert_eq!(
            err.unwrap_err(),
            SchemaError::DuplicateClass(Arc::from("A"))
        );
    }

    #[test]
    fn unknown_attr_is_none() {
        let s = Schema::paper_schema();
        assert!(s.attr("salary").is_none());
    }

    #[test]
    fn set_valued_attrs_have_set_types() {
        let s = Schema::paper_schema();
        let (_, _, child) = s.attr("child").unwrap();
        assert_eq!(child.ty, Type::set(Type::Obj(ClassId(0))));
    }
}
