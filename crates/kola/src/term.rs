//! KOLA terms: functions, predicates and queries.
//!
//! These are the *concrete* (variable-free) terms of the algebra — exactly
//! the combinators of Tables 1 and 2 of the paper. Pattern terms with
//! metavariables live in the `kola-rewrite` crate; keeping them out of the
//! core means the evaluator in [`crate::eval`] is total over this type.
//!
//! Naming follows the paper:
//!
//! | paper | here |
//! |-------|------|
//! | `id`, `π1`, `π2` | [`Func::Id`], [`Func::Pi1`], [`Func::Pi2`] |
//! | `f ∘ g` | [`Func::Compose`] |
//! | `⟨f, g⟩` ("pairing") | [`Func::PairWith`] |
//! | `f × g` | [`Func::Times`] |
//! | `Kf(x)` | [`Func::ConstF`] |
//! | `Cf(f, x)` (currying) | [`Func::CurryF`] |
//! | `con(p, f, g)` | [`Func::Cond`] |
//! | `flat`, `iterate`, `iter`, `join`, `nest`, `unnest` | likewise |
//! | `eq`, `leq`, `gt`, `in` | [`Pred::Eq`] … |
//! | `p ⊕ f` | [`Pred::Oplus`] |
//! | `p & q`, `p \| q`, `p⁻¹` | [`Pred::And`], [`Pred::Or`], [`Pred::Not`] |
//! | `Kp(b)`, `Cp(p, x)` | [`Pred::ConstP`], [`Pred::CurryP`] |

use crate::value::{Sym, Value};

// Note on constant/curry payloads: `Kf`, `Cf` and `Cp` carry a *closed
// [`Query`]* rather than a [`Value`]. The paper writes `Kf(P)` (Figure 3)
// and `Kf(B)` (Figure 7) where `P`/`B` are named extents, and rule 13 moves
// the payload of a `Kf` into a `Cp`; representing payloads as queries keeps
// those terms and rules syntactic. A payload query must not mention the
// argument — KOLA has no variables, so that is true by construction.

/// A KOLA function. Invoked with `f ! x` (see [`crate::eval::eval_func`]).
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Func {
    /// The identity function: `id ! x = x`.
    Id,
    /// First projection: `π1 ! [x, y] = x`.
    Pi1,
    /// Second projection: `π2 ! [x, y] = y`.
    Pi2,
    /// A schema primitive (attribute dereference), e.g. `age ! p = p.age`.
    Prim(Sym),
    /// Composition: `(f ∘ g) ! x = f ! (g ! x)`.
    Compose(Box<Func>, Box<Func>),
    /// Pairing: `⟨f, g⟩ ! x = [f ! x, g ! x]`.
    PairWith(Box<Func>, Box<Func>),
    /// Pairwise application: `(f × g) ! [x, y] = [f ! x, g ! y]`.
    Times(Box<Func>, Box<Func>),
    /// Constant function: `Kf(x) ! y = x`.
    ConstF(Box<Query>),
    /// Currying: `Cf(f, x) ! y = f ! [x, y]`.
    CurryF(Box<Func>, Box<Query>),
    /// Conditional: `con(p, f, g) ! x = f ! x` if `p ? x`, else `g ! x`.
    Cond(Box<Pred>, Box<Func>, Box<Func>),
    /// Set flattening: `flat ! A = { x | x ∈ B, B ∈ A }`.
    Flat,
    /// Select-and-map over a set:
    /// `iterate(p, f) ! A = { f ! x | x ∈ A, p ? x }`.
    Iterate(Box<Pred>, Box<Func>),
    /// Environment-carrying iteration over a pair `[e, B]`:
    /// `iter(p, f) ! [e, B] = { f ! [e, y] | y ∈ B, p ? [e, y] }`.
    Iter(Box<Pred>, Box<Func>),
    /// Join: `join(p, f) ! [A, B] = { f![x,y] | x ∈ A, y ∈ B, p?[x,y] }`.
    Join(Box<Pred>, Box<Func>),
    /// Nesting relative to a second set (the paper's NULL-free outer join):
    /// `nest(f, g) ! [A, B] = { [y, {g!x | x ∈ A, f!x = y}] | y ∈ B }`.
    Nest(Box<Func>, Box<Func>),
    /// Unnesting: `unnest(f, g) ! A = { [f!x, y] | x ∈ A, y ∈ g!x }`.
    Unnest(Box<Func>, Box<Func>),
    /// Bag injection (§6 extension): `bagify ! A` is the bag with one
    /// occurrence of each element of the set `A`.
    Bagify,
    /// Duplicate elimination (§6): `dedup ! B` is the support set of bag `B`.
    Dedup,
    /// Bag iteration (§6): like `iterate` but multiplicity-preserving —
    /// `biterate(p, f) ! B` maps and filters, summing multiplicities of
    /// colliding images.
    BIterate(Box<Pred>, Box<Func>),
    /// Additive bag union (§6): `bunion ! [B1, B2]` adds multiplicities.
    BUnion,
    /// Bag flattening (§6): `bflat ! BB` additively unions a bag of bags.
    BFlat,
    /// Binary set union: `union ! [A, B] = A ∪ B`. (Extension used by the
    /// precondition rules of §4.2, e.g. the `injective` intersection rule.)
    SetUnion,
    /// Binary set intersection: `intersect ! [A, B] = A ∩ B`.
    SetIntersect,
    /// Binary set difference: `diff ! [A, B] = A \ B`.
    SetDiff,
}

// A derived `Clone` spends one stack frame per node, which overflows on
// the deep ∘-chains this algebra routinely builds (a few thousand segments
// kill a 2 MiB thread). Cloning therefore walks ∘-spines with an explicit
// stack — structure-preserving for every tree shape — so chain depth costs
// heap, not stack. Non-∘ nesting still recurses, one frame per level.
impl Clone for Func {
    fn clone(&self) -> Func {
        match self {
            Func::Id => Func::Id,
            Func::Pi1 => Func::Pi1,
            Func::Pi2 => Func::Pi2,
            Func::Prim(s) => Func::Prim(s.clone()),
            Func::Compose(_, _) => {
                enum Task<'a> {
                    Visit(&'a Func),
                    Build,
                }
                let mut tasks = vec![Task::Visit(self)];
                let mut out: Vec<Func> = Vec::new();
                while let Some(t) = tasks.pop() {
                    match t {
                        Task::Visit(Func::Compose(a, b)) => {
                            tasks.push(Task::Build);
                            tasks.push(Task::Visit(b));
                            tasks.push(Task::Visit(a));
                        }
                        Task::Visit(leaf) => out.push(leaf.clone()),
                        Task::Build => {
                            let b = out.pop().expect("∘ has two children");
                            let a = out.pop().expect("∘ has two children");
                            out.push(Func::Compose(Box::new(a), Box::new(b)));
                        }
                    }
                }
                out.pop().expect("spine rebuild yields one term")
            }
            Func::PairWith(f, g) => Func::PairWith(f.clone(), g.clone()),
            Func::Times(f, g) => Func::Times(f.clone(), g.clone()),
            Func::ConstF(q) => Func::ConstF(q.clone()),
            Func::CurryF(f, q) => Func::CurryF(f.clone(), q.clone()),
            Func::Cond(p, f, g) => Func::Cond(p.clone(), f.clone(), g.clone()),
            Func::Flat => Func::Flat,
            Func::Iterate(p, f) => Func::Iterate(p.clone(), f.clone()),
            Func::Iter(p, f) => Func::Iter(p.clone(), f.clone()),
            Func::Join(p, f) => Func::Join(p.clone(), f.clone()),
            Func::Nest(f, g) => Func::Nest(f.clone(), g.clone()),
            Func::Unnest(f, g) => Func::Unnest(f.clone(), g.clone()),
            Func::Bagify => Func::Bagify,
            Func::Dedup => Func::Dedup,
            Func::BIterate(p, f) => Func::BIterate(p.clone(), f.clone()),
            Func::BUnion => Func::BUnion,
            Func::BFlat => Func::BFlat,
            Func::SetUnion => Func::SetUnion,
            Func::SetIntersect => Func::SetIntersect,
            Func::SetDiff => Func::SetDiff,
        }
    }
}

// Derived drop glue is just as recursive as a derived `Clone` — and unlike
// cloning, *every* deep term is eventually dropped, including ones an
// unwinding worker abandons mid-flight. These impls tear terms down with an
// explicit worklist: a node's children are detached (swapped for leaves)
// onto a heap stack before the node itself is freed, so teardown depth
// costs heap, not stack. The three term types nest through each other
// (`Cond` holds a `Pred`, `Oplus` holds a `Func`, `ConstF` holds a
// `Query`), so the worklist carries all three.
enum Torn {
    F(Func),
    P(Pred),
    Q(Query),
}

fn detach_func(f: &mut Func, out: &mut Vec<Torn>) {
    use std::mem::replace;
    match f {
        Func::Id
        | Func::Pi1
        | Func::Pi2
        | Func::Prim(_)
        | Func::Flat
        | Func::Bagify
        | Func::Dedup
        | Func::BUnion
        | Func::BFlat
        | Func::SetUnion
        | Func::SetIntersect
        | Func::SetDiff => {}
        Func::Compose(a, b)
        | Func::PairWith(a, b)
        | Func::Times(a, b)
        | Func::Nest(a, b)
        | Func::Unnest(a, b) => {
            out.push(Torn::F(replace(a, Func::Id)));
            out.push(Torn::F(replace(b, Func::Id)));
        }
        Func::ConstF(q) => out.push(Torn::Q(replace(q, Query::Lit(Value::Unit)))),
        Func::CurryF(g, q) => {
            out.push(Torn::F(replace(g, Func::Id)));
            out.push(Torn::Q(replace(q, Query::Lit(Value::Unit))));
        }
        Func::Cond(p, g, h) => {
            out.push(Torn::P(replace(p, Pred::Eq)));
            out.push(Torn::F(replace(g, Func::Id)));
            out.push(Torn::F(replace(h, Func::Id)));
        }
        Func::Iterate(p, g) | Func::Iter(p, g) | Func::Join(p, g) | Func::BIterate(p, g) => {
            out.push(Torn::P(replace(p, Pred::Eq)));
            out.push(Torn::F(replace(g, Func::Id)));
        }
    }
}

fn detach_pred(p: &mut Pred, out: &mut Vec<Torn>) {
    use std::mem::replace;
    match p {
        Pred::Eq
        | Pred::Lt
        | Pred::Leq
        | Pred::Gt
        | Pred::Geq
        | Pred::In
        | Pred::PrimP(_)
        | Pred::ConstP(_) => {}
        Pred::Oplus(q, f) => {
            out.push(Torn::P(replace(q, Pred::Eq)));
            out.push(Torn::F(replace(f, Func::Id)));
        }
        Pred::And(a, b) | Pred::Or(a, b) => {
            out.push(Torn::P(replace(a, Pred::Eq)));
            out.push(Torn::P(replace(b, Pred::Eq)));
        }
        Pred::Not(a) | Pred::Conv(a) => out.push(Torn::P(replace(a, Pred::Eq))),
        Pred::CurryP(a, q) => {
            out.push(Torn::P(replace(a, Pred::Eq)));
            out.push(Torn::Q(replace(q, Query::Lit(Value::Unit))));
        }
    }
}

fn detach_query(q: &mut Query, out: &mut Vec<Torn>) {
    use std::mem::replace;
    match q {
        Query::Lit(_) | Query::Extent(_) => {}
        Query::PairQ(a, b) | Query::Union(a, b) | Query::Intersect(a, b) | Query::Diff(a, b) => {
            out.push(Torn::Q(replace(a, Query::Lit(Value::Unit))));
            out.push(Torn::Q(replace(b, Query::Lit(Value::Unit))));
        }
        Query::App(f, a) => {
            out.push(Torn::F(replace(f, Func::Id)));
            out.push(Torn::Q(replace(a, Query::Lit(Value::Unit))));
        }
        Query::Test(p, a) => {
            out.push(Torn::P(replace(p, Pred::Eq)));
            out.push(Torn::Q(replace(a, Query::Lit(Value::Unit))));
        }
    }
}

// Each popped node drops at the end of its match arm; its own `Drop` runs
// again, but finds only detached-leaf children, so that nested call is O(1)
// and allocation-free (`Vec::new` does not allocate until first push).
fn teardown(mut out: Vec<Torn>) {
    while let Some(t) = out.pop() {
        match t {
            Torn::F(mut f) => detach_func(&mut f, &mut out),
            Torn::P(mut p) => detach_pred(&mut p, &mut out),
            Torn::Q(mut q) => detach_query(&mut q, &mut out),
        }
    }
}

impl Drop for Func {
    fn drop(&mut self) {
        let mut out = Vec::new();
        detach_func(self, &mut out);
        teardown(out);
    }
}

impl Drop for Pred {
    fn drop(&mut self) {
        let mut out = Vec::new();
        detach_pred(self, &mut out);
        teardown(out);
    }
}

impl Drop for Query {
    fn drop(&mut self) {
        let mut out = Vec::new();
        detach_query(self, &mut out);
        teardown(out);
    }
}

/// A KOLA predicate. Invoked with `p ? x` (see [`crate::eval::eval_pred`]).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Pred {
    /// Equality on pairs: `eq ? [x, y]` iff `x = y`.
    Eq,
    /// Less-than on integer pairs: `lt ? [x, y]` iff `x < y`.
    Lt,
    /// Less-or-equal on integer pairs.
    Leq,
    /// Greater-than on integer pairs.
    Gt,
    /// Greater-or-equal on integer pairs.
    Geq,
    /// Set membership: `in ? [x, A]` iff `x ∈ A`.
    In,
    /// A schema primitive predicate: a boolean attribute used as a predicate.
    PrimP(Sym),
    /// Predicate/function combination: `(p ⊕ f) ? x = p ? (f ! x)`.
    Oplus(Box<Pred>, Box<Func>),
    /// Conjunction: `(p & q) ? x = p?x ∧ q?x`.
    And(Box<Pred>, Box<Pred>),
    /// Disjunction: `(p | q) ? x = p?x ∨ q?x`.
    Or(Box<Pred>, Box<Pred>),
    /// Complement: `~p ? x = ¬(p ? x)`.
    Not(Box<Pred>),
    /// Converse (the paper's `p⁻¹`): `inv(p) ? [x, y] = p ? [y, x]`.
    ///
    /// Rule 13 (`p ⊕ ⟨f, Kf(k)⟩ ≡ Cp(p⁻¹, k) ⊕ f`) is sound only if `⁻¹`
    /// swaps arguments; rule 7 then reads `inv(gt) ≡ lt` (the figure prints
    /// the converse of `gt` as "leq"; with standard naming it is strict
    /// less-than).
    Conv(Box<Pred>),
    /// Constant predicate: `Kp(b) ? x = b`.
    ConstP(bool),
    /// Currying: `Cp(p, x) ? y = p ? [x, y]`.
    CurryP(Box<Pred>, Box<Query>),
}

/// A KOLA *query*: an object-level term. The top level of a query is usually
/// a function application `f ! q` (the paper writes e.g.
/// `iterate(Kp(T), city ∘ addr) ! P`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Query {
    /// A literal value.
    Lit(Value),
    /// A named extent bound in the [`crate::db::Db`] (e.g. `P`, `V`).
    Extent(Sym),
    /// Pair formation `[q1, q2]`.
    PairQ(Box<Query>, Box<Query>),
    /// Function application `f ! q`.
    App(Func, Box<Query>),
    /// Predicate application `p ? q` — evaluates to a boolean.
    Test(Pred, Box<Query>),
    /// Set union of two queries.
    Union(Box<Query>, Box<Query>),
    /// Set intersection of two queries.
    Intersect(Box<Query>, Box<Query>),
    /// Set difference of two queries.
    Diff(Box<Query>, Box<Query>),
}

impl Func {
    /// Number of AST nodes (counting embedded predicates/values), used for
    /// the §4.2 translation-size experiment.
    pub fn size(&self) -> usize {
        match self {
            Func::Id
            | Func::Pi1
            | Func::Pi2
            | Func::Prim(_)
            | Func::Flat
            | Func::Bagify
            | Func::Dedup
            | Func::BUnion
            | Func::BFlat
            | Func::SetUnion
            | Func::SetIntersect
            | Func::SetDiff => 1,
            Func::Compose(f, g) | Func::PairWith(f, g) | Func::Times(f, g) => {
                1 + f.size() + g.size()
            }
            Func::ConstF(q) => 1 + q.size(),
            Func::CurryF(f, q) => 1 + f.size() + q.size(),
            Func::Cond(p, f, g) => 1 + p.size() + f.size() + g.size(),
            Func::Iterate(p, f) | Func::Iter(p, f) | Func::Join(p, f) | Func::BIterate(p, f) => {
                1 + p.size() + f.size()
            }
            Func::Nest(f, g) | Func::Unnest(f, g) => 1 + f.size() + g.size(),
        }
    }

    /// Maximum nesting depth of the AST.
    pub fn depth(&self) -> usize {
        match self {
            Func::Id
            | Func::Pi1
            | Func::Pi2
            | Func::Prim(_)
            | Func::Flat
            | Func::Bagify
            | Func::Dedup
            | Func::BUnion
            | Func::BFlat
            | Func::SetUnion
            | Func::SetIntersect
            | Func::SetDiff => 1,
            Func::Compose(f, g) | Func::PairWith(f, g) | Func::Times(f, g) => {
                1 + f.depth().max(g.depth())
            }
            Func::ConstF(q) => 1 + q.depth(),
            Func::CurryF(f, q) => 1 + f.depth().max(q.depth()),
            Func::Cond(p, f, g) => 1 + p.depth().max(f.depth()).max(g.depth()),
            Func::Iterate(p, f) | Func::Iter(p, f) | Func::Join(p, f) | Func::BIterate(p, f) => {
                1 + p.depth().max(f.depth())
            }
            Func::Nest(f, g) | Func::Unnest(f, g) => 1 + f.depth().max(g.depth()),
        }
    }

    /// Right-normalize composition chains: `(f ∘ g) ∘ h ⇒ f ∘ (g ∘ h)`,
    /// recursively, everywhere in the term. Sound by associativity of `∘`
    /// (rule 1 of Figure 5). Matching in `kola-rewrite` assumes this form.
    pub fn normalize(&self) -> Func {
        match self {
            Func::Compose(..) => {
                // Flatten the whole ∘-spine with an explicit stack, normalize
                // each (non-Compose) segment, and rebuild right-associated.
                // Linear in chain length and safe on chains of any depth —
                // the naive "normalize children then re-associate" recursion
                // is quadratic and overflows the native stack on long
                // left-associated chains.
                let mut segs: Vec<&Func> = Vec::new();
                let mut work = vec![self];
                while let Some(f) = work.pop() {
                    match f {
                        Func::Compose(a, b) => {
                            work.push(b);
                            work.push(a);
                        }
                        leaf => segs.push(leaf),
                    }
                }
                let mut it = segs.into_iter().rev().map(|f| f.normalize());
                let last = it.next().expect("compose spine has segments");
                it.fold(last, |acc, f| Func::Compose(Box::new(f), Box::new(acc)))
            }
            Func::PairWith(f, g) => {
                Func::PairWith(Box::new(f.normalize()), Box::new(g.normalize()))
            }
            Func::Times(f, g) => Func::Times(Box::new(f.normalize()), Box::new(g.normalize())),
            Func::ConstF(q) => Func::ConstF(Box::new(q.normalize())),
            Func::CurryF(f, q) => Func::CurryF(Box::new(f.normalize()), Box::new(q.normalize())),
            Func::Cond(p, f, g) => Func::Cond(
                Box::new(p.normalize()),
                Box::new(f.normalize()),
                Box::new(g.normalize()),
            ),
            Func::Iterate(p, f) => Func::Iterate(Box::new(p.normalize()), Box::new(f.normalize())),
            Func::Iter(p, f) => Func::Iter(Box::new(p.normalize()), Box::new(f.normalize())),
            Func::BIterate(p, f) => {
                Func::BIterate(Box::new(p.normalize()), Box::new(f.normalize()))
            }
            Func::Join(p, f) => Func::Join(Box::new(p.normalize()), Box::new(f.normalize())),
            Func::Nest(f, g) => Func::Nest(Box::new(f.normalize()), Box::new(g.normalize())),
            Func::Unnest(f, g) => Func::Unnest(Box::new(f.normalize()), Box::new(g.normalize())),
            leaf => leaf.clone(),
        }
    }
}

impl Pred {
    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            Pred::Eq | Pred::Lt | Pred::Leq | Pred::Gt | Pred::Geq | Pred::In | Pred::PrimP(_) => 1,
            Pred::Oplus(p, f) => 1 + p.size() + f.size(),
            Pred::And(p, q) | Pred::Or(p, q) => 1 + p.size() + q.size(),
            Pred::Not(p) | Pred::Conv(p) => 1 + p.size(),
            Pred::ConstP(_) => 1,
            Pred::CurryP(p, q) => 1 + p.size() + q.size(),
        }
    }

    /// Maximum nesting depth.
    pub fn depth(&self) -> usize {
        match self {
            Pred::Eq
            | Pred::Lt
            | Pred::Leq
            | Pred::Gt
            | Pred::Geq
            | Pred::In
            | Pred::PrimP(_)
            | Pred::ConstP(_) => 1,
            Pred::Oplus(p, f) => 1 + p.depth().max(f.depth()),
            Pred::And(p, q) | Pred::Or(p, q) => 1 + p.depth().max(q.depth()),
            Pred::Not(p) | Pred::Conv(p) => 1 + p.depth(),
            Pred::CurryP(p, q) => 1 + p.depth().max(q.depth()),
        }
    }

    /// Normalize embedded functions (see [`Func::normalize`]).
    pub fn normalize(&self) -> Pred {
        match self {
            Pred::Oplus(p, f) => Pred::Oplus(Box::new(p.normalize()), Box::new(f.normalize())),
            Pred::And(p, q) => Pred::And(Box::new(p.normalize()), Box::new(q.normalize())),
            Pred::Or(p, q) => Pred::Or(Box::new(p.normalize()), Box::new(q.normalize())),
            Pred::Not(p) => Pred::Not(Box::new(p.normalize())),
            Pred::Conv(p) => Pred::Conv(Box::new(p.normalize())),
            Pred::CurryP(p, q) => Pred::CurryP(Box::new(p.normalize()), Box::new(q.normalize())),
            leaf => leaf.clone(),
        }
    }
}

impl Query {
    /// Number of AST nodes (functions and predicates included).
    pub fn size(&self) -> usize {
        match self {
            Query::Lit(_) | Query::Extent(_) => 1,
            Query::PairQ(a, b)
            | Query::Union(a, b)
            | Query::Intersect(a, b)
            | Query::Diff(a, b) => 1 + a.size() + b.size(),
            Query::App(f, q) => 1 + f.size() + q.size(),
            Query::Test(p, q) => 1 + p.size() + q.size(),
        }
    }

    /// Maximum nesting depth of the AST.
    pub fn depth(&self) -> usize {
        match self {
            Query::Lit(_) | Query::Extent(_) => 1,
            Query::PairQ(a, b)
            | Query::Union(a, b)
            | Query::Intersect(a, b)
            | Query::Diff(a, b) => 1 + a.depth().max(b.depth()),
            Query::App(f, q) => 1 + f.depth().max(q.depth()),
            Query::Test(p, q) => 1 + p.depth().max(q.depth()),
        }
    }

    /// Normalize embedded functions (see [`Func::normalize`]).
    pub fn normalize(&self) -> Query {
        match self {
            Query::PairQ(a, b) => Query::PairQ(Box::new(a.normalize()), Box::new(b.normalize())),
            Query::Union(a, b) => Query::Union(Box::new(a.normalize()), Box::new(b.normalize())),
            Query::Intersect(a, b) => {
                Query::Intersect(Box::new(a.normalize()), Box::new(b.normalize()))
            }
            Query::Diff(a, b) => Query::Diff(Box::new(a.normalize()), Box::new(b.normalize())),
            Query::App(f, q) => Query::App(f.normalize(), Box::new(q.normalize())),
            Query::Test(p, q) => Query::Test(p.normalize(), Box::new(q.normalize())),
            leaf => leaf.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;

    #[test]
    fn normalize_right_associates() {
        // ((a ∘ b) ∘ c) ∘ d => a ∘ (b ∘ (c ∘ d))
        let a = prim("age");
        let b = prim("addr");
        let c = Func::Id;
        let d = Func::Pi1;
        let left = o(o(o(a.clone(), b.clone()), c.clone()), d.clone());
        let want = o(a, o(b, o(c, d)));
        assert_eq!(left.normalize(), want);
    }

    #[test]
    fn normalize_is_idempotent() {
        let t = o(o(prim("a"), prim("b")), o(prim("c"), prim("d")));
        let n1 = t.normalize();
        let n2 = n1.normalize();
        assert_eq!(n1, n2);
    }

    #[test]
    fn normalize_descends_into_formers() {
        let t = iterate(kp(true), o(o(prim("a"), prim("b")), prim("c")));
        let n = t.normalize();
        match &n {
            Func::Iterate(_, f) => {
                assert_eq!(**f, o(prim("a"), o(prim("b"), prim("c"))));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn sizes() {
        assert_eq!(Func::Id.size(), 1);
        assert_eq!(o(Func::Id, Func::Pi1).size(), 3);
        assert_eq!(kf(Value::Int(5)).size(), 2);
        assert_eq!(iterate(kp(true), Func::Id).size(), 3);
    }

    #[test]
    fn depth() {
        assert_eq!(Func::Id.depth(), 1);
        assert_eq!(o(Func::Id, o(Func::Id, Func::Id)).depth(), 3);
    }

    #[test]
    fn clone_preserves_structure() {
        let t = o(o(prim("a"), prim("b")), o(prim("c"), prim("d")));
        assert_eq!(t.clone(), t);
        let t = iterate(kp(true), o(prim("a"), o(prim("b"), prim("c"))));
        assert_eq!(t.clone(), t);
    }

    #[test]
    fn clone_survives_deep_chains_of_either_association() {
        // 50k ∘-segments, alternating association so both spine directions
        // are exercised; equality is checked with an explicit stack because
        // derived PartialEq recurses.
        let mut f = prim("age");
        for i in 0..50_000usize {
            f = if i % 2 == 0 {
                o(Func::Id, f)
            } else {
                o(f, Func::Id)
            };
        }
        let g = f.clone();
        let mut pairs = vec![(&f, &g)];
        while let Some((a, b)) = pairs.pop() {
            match (a, b) {
                (Func::Compose(a1, a2), Func::Compose(b1, b2)) => {
                    pairs.push((a1, b1));
                    pairs.push((a2, b2));
                }
                (x, y) => assert_eq!(x, y),
            }
        }
        // Dropping the deep terms exercises the worklist `Drop` impls.
        drop(f);
        drop(g);
    }

    #[test]
    fn drop_is_stack_safe_across_all_three_term_types() {
        // Deep nesting that alternates Func/Pred/Query constructors so the
        // teardown worklist crosses type boundaries, not just ∘-spines.
        let mut q = Query::Lit(Value::Unit);
        for i in 0..60_000 {
            q = match i % 3 {
                0 => Query::App(Func::ConstF(Box::new(q)), Box::new(Query::Lit(Value::Unit))),
                1 => Query::Test(
                    Pred::Not(Box::new(Pred::CurryP(Box::new(Pred::Eq), Box::new(q)))),
                    Box::new(Query::Lit(Value::Unit)),
                ),
                _ => Query::PairQ(Box::new(q), Box::new(Query::Lit(Value::Unit))),
            };
        }
        drop(q); // must not overflow
    }
}
