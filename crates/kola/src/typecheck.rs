//! Type inference for KOLA terms and patterns.
//!
//! Inference runs over *patterns* so that rule metavariables get types too:
//! each `$f` receives a fresh `(input, output)` pair, each `%p` an input
//! type, each `^x` an object type, all recorded in the [`Inference`] so the
//! verification harness can instantiate them with well-typed random terms.
//! Concrete terms are checked by embedding ([`typecheck_func`] etc.).

use crate::pattern::{PFunc, PPred, PQuery};
use crate::schema::Schema;
use crate::term::{Func, Pred, Query};
use crate::types::{FuncType, Type, TypeError, Unifier};
use crate::value::{Sym, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The ambient typing environment: a schema (for primitives) and the types
/// of named extents.
#[derive(Debug, Clone, Default)]
pub struct TypeEnv {
    /// Schema supplying primitive function/predicate types.
    pub schema: Schema,
    /// Types of named extents (e.g. `P : {obj Person}`).
    pub extents: BTreeMap<Sym, Type>,
}

impl TypeEnv {
    /// Environment over the paper's schema with the paper's extents
    /// (`P : {Person}`, `V : {Vehicle}`).
    pub fn paper_env() -> TypeEnv {
        let schema = Schema::paper_schema();
        let person = schema.class_id("Person").expect("paper schema");
        let vehicle = schema.class_id("Vehicle").expect("paper schema");
        let mut extents = BTreeMap::new();
        extents.insert(Arc::from("P") as Sym, Type::set(Type::Obj(person)));
        extents.insert(Arc::from("V") as Sym, Type::set(Type::Obj(vehicle)));
        TypeEnv { schema, extents }
    }

    /// Bind an extent's type.
    pub fn bind_extent(&mut self, name: &str, ty: Type) {
        self.extents.insert(Arc::from(name), ty);
    }
}

/// State accumulated during inference: the unifier plus discovered types of
/// metavariables.
#[derive(Debug, Default, Clone)]
pub struct Inference {
    /// The type-variable unifier.
    pub unifier: Unifier,
    /// Function metavariables: name -> (input, output).
    pub fvars: BTreeMap<Sym, (Type, Type)>,
    /// Predicate metavariables: name -> input type.
    pub pvars: BTreeMap<Sym, Type>,
    /// Object metavariables: name -> type.
    pub ovars: BTreeMap<Sym, Type>,
}

impl Inference {
    /// Fresh, empty inference state.
    pub fn new() -> Self {
        Self::default()
    }

    fn fvar(&mut self, name: &Sym) -> (Type, Type) {
        if let Some(t) = self.fvars.get(name) {
            return t.clone();
        }
        let t = (self.unifier.fresh(), self.unifier.fresh());
        self.fvars.insert(name.clone(), t.clone());
        t
    }

    fn pvar(&mut self, name: &Sym) -> Type {
        if let Some(t) = self.pvars.get(name) {
            return t.clone();
        }
        let t = self.unifier.fresh();
        self.pvars.insert(name.clone(), t.clone());
        t
    }

    fn ovar(&mut self, name: &Sym) -> Type {
        if let Some(t) = self.ovars.get(name) {
            return t.clone();
        }
        let t = self.unifier.fresh();
        self.ovars.insert(name.clone(), t.clone());
        t
    }
}

/// Infer the type of a value (sets must be homogeneous).
pub fn type_of_value(inf: &mut Inference, v: &Value) -> Result<Type, TypeError> {
    Ok(match v {
        Value::Unit => Type::Unit,
        Value::Bool(_) => Type::Bool,
        Value::Int(_) => Type::Int,
        Value::Str(_) => Type::Str,
        Value::Obj(o) => Type::Obj(o.class),
        Value::Pair(p) => Type::pair(type_of_value(inf, &p.0)?, type_of_value(inf, &p.1)?),
        Value::Set(s) => {
            let elem = inf.unifier.fresh();
            for x in s.iter() {
                let t = type_of_value(inf, x)?;
                inf.unifier.unify(&elem, &t)?;
            }
            Type::set(elem)
        }
        Value::Bag(b) => {
            let elem = inf.unifier.fresh();
            for (x, _) in b.iter() {
                let t = type_of_value(inf, x)?;
                inf.unifier.unify(&elem, &t)?;
            }
            Type::bag(elem)
        }
    })
}

/// Infer `(input, output)` for a function pattern.
pub fn infer_pfunc(
    env: &TypeEnv,
    inf: &mut Inference,
    f: &PFunc,
) -> Result<(Type, Type), TypeError> {
    match f {
        PFunc::Var(v) => Ok(inf.fvar(v)),
        PFunc::Id => {
            let a = inf.unifier.fresh();
            Ok((a.clone(), a))
        }
        PFunc::Pi1 => {
            let a = inf.unifier.fresh();
            let b = inf.unifier.fresh();
            Ok((Type::pair(a.clone(), b), a))
        }
        PFunc::Pi2 => {
            let a = inf.unifier.fresh();
            let b = inf.unifier.fresh();
            Ok((Type::pair(a, b.clone()), b))
        }
        PFunc::Prim(name) => {
            let (cid, _, attr) = env
                .schema
                .attr(name)
                .ok_or_else(|| TypeError::UnknownPrim(name.clone()))?;
            Ok((Type::Obj(cid), attr.ty.clone()))
        }
        PFunc::Compose(f, g) => {
            let (gi, go) = infer_pfunc(env, inf, g)?;
            let (fi, fo) = infer_pfunc(env, inf, f)?;
            inf.unifier.unify(&go, &fi)?;
            Ok((gi, fo))
        }
        PFunc::PairWith(f, g) => {
            let (fi, fo) = infer_pfunc(env, inf, f)?;
            let (gi, go) = infer_pfunc(env, inf, g)?;
            inf.unifier.unify(&fi, &gi)?;
            Ok((fi, Type::pair(fo, go)))
        }
        PFunc::Times(f, g) => {
            let (fi, fo) = infer_pfunc(env, inf, f)?;
            let (gi, go) = infer_pfunc(env, inf, g)?;
            Ok((Type::pair(fi, gi), Type::pair(fo, go)))
        }
        PFunc::ConstF(q) => {
            let t = infer_pquery(env, inf, q)?;
            let a = inf.unifier.fresh();
            Ok((a, t))
        }
        PFunc::CurryF(f, q) => {
            let tq = infer_pquery(env, inf, q)?;
            let (fi, fo) = infer_pfunc(env, inf, f)?;
            let a = inf.unifier.fresh();
            inf.unifier.unify(&fi, &Type::pair(tq, a.clone()))?;
            Ok((a, fo))
        }
        PFunc::Cond(p, f, g) => {
            let pi = infer_ppred(env, inf, p)?;
            let (fi, fo) = infer_pfunc(env, inf, f)?;
            let (gi, go) = infer_pfunc(env, inf, g)?;
            inf.unifier.unify(&pi, &fi)?;
            inf.unifier.unify(&fi, &gi)?;
            inf.unifier.unify(&fo, &go)?;
            Ok((fi, fo))
        }
        PFunc::Flat => {
            let a = inf.unifier.fresh();
            Ok((Type::set(Type::set(a.clone())), Type::set(a)))
        }
        PFunc::Iterate(p, f) => {
            let pi = infer_ppred(env, inf, p)?;
            let (fi, fo) = infer_pfunc(env, inf, f)?;
            inf.unifier.unify(&pi, &fi)?;
            Ok((Type::set(fi), Type::set(fo)))
        }
        PFunc::Iter(p, f) => {
            // [e, {y}] -> {b}, with p : [e, y], f : [e, y] -> b
            let e = inf.unifier.fresh();
            let y = inf.unifier.fresh();
            let pi = infer_ppred(env, inf, p)?;
            let (fi, fo) = infer_pfunc(env, inf, f)?;
            let pair = Type::pair(e.clone(), y.clone());
            inf.unifier.unify(&pi, &pair)?;
            inf.unifier.unify(&fi, &pair)?;
            Ok((Type::pair(e, Type::set(y)), Type::set(fo)))
        }
        PFunc::Join(p, f) => {
            let a = inf.unifier.fresh();
            let b = inf.unifier.fresh();
            let pi = infer_ppred(env, inf, p)?;
            let (fi, fo) = infer_pfunc(env, inf, f)?;
            let pair = Type::pair(a.clone(), b.clone());
            inf.unifier.unify(&pi, &pair)?;
            inf.unifier.unify(&fi, &pair)?;
            Ok((Type::pair(Type::set(a), Type::set(b)), Type::set(fo)))
        }
        PFunc::Nest(f, g) => {
            // f : a -> k, g : a -> v; [{a}, {k}] -> {[k, {v}]}
            let (fi, fo) = infer_pfunc(env, inf, f)?;
            let (gi, go) = infer_pfunc(env, inf, g)?;
            inf.unifier.unify(&fi, &gi)?;
            Ok((
                Type::pair(Type::set(fi), Type::set(fo.clone())),
                Type::set(Type::pair(fo, Type::set(go))),
            ))
        }
        PFunc::Unnest(f, g) => {
            // f : a -> k, g : a -> {v}; {a} -> {[k, v]}
            let (fi, fo) = infer_pfunc(env, inf, f)?;
            let (gi, go) = infer_pfunc(env, inf, g)?;
            inf.unifier.unify(&fi, &gi)?;
            let v = inf.unifier.fresh();
            inf.unifier.unify(&go, &Type::set(v.clone()))?;
            Ok((Type::set(fi), Type::set(Type::pair(fo, v))))
        }
        PFunc::Bagify => {
            let a = inf.unifier.fresh();
            Ok((Type::set(a.clone()), Type::bag(a)))
        }
        PFunc::Dedup => {
            let a = inf.unifier.fresh();
            Ok((Type::bag(a.clone()), Type::set(a)))
        }
        PFunc::BIterate(p, f) => {
            let pi = infer_ppred(env, inf, p)?;
            let (fi, fo) = infer_pfunc(env, inf, f)?;
            inf.unifier.unify(&pi, &fi)?;
            Ok((Type::bag(fi), Type::bag(fo)))
        }
        PFunc::BUnion => {
            let a = inf.unifier.fresh();
            let b = Type::bag(a);
            Ok((Type::pair(b.clone(), b.clone()), b))
        }
        PFunc::BFlat => {
            let a = inf.unifier.fresh();
            Ok((Type::bag(Type::bag(a.clone())), Type::bag(a)))
        }
        PFunc::SetUnion | PFunc::SetIntersect | PFunc::SetDiff => {
            let a = inf.unifier.fresh();
            let s = Type::set(a);
            Ok((Type::pair(s.clone(), s.clone()), s))
        }
    }
}

/// Infer the input type of a predicate pattern.
pub fn infer_ppred(env: &TypeEnv, inf: &mut Inference, p: &PPred) -> Result<Type, TypeError> {
    match p {
        PPred::Var(v) => Ok(inf.pvar(v)),
        PPred::Eq => {
            let a = inf.unifier.fresh();
            Ok(Type::pair(a.clone(), a))
        }
        PPred::Lt | PPred::Leq | PPred::Gt | PPred::Geq => Ok(Type::pair(Type::Int, Type::Int)),
        PPred::In => {
            let a = inf.unifier.fresh();
            Ok(Type::pair(a.clone(), Type::set(a)))
        }
        PPred::PrimP(name) => {
            let (cid, _, attr) = env
                .schema
                .attr(name)
                .ok_or_else(|| TypeError::UnknownPrim(name.clone()))?;
            let ty = attr.ty.clone();
            inf.unifier.unify(&ty, &Type::Bool)?;
            Ok(Type::Obj(cid))
        }
        PPred::Oplus(p, f) => {
            let (fi, fo) = infer_pfunc(env, inf, f)?;
            let pi = infer_ppred(env, inf, p)?;
            inf.unifier.unify(&fo, &pi)?;
            Ok(fi)
        }
        PPred::And(p, q) | PPred::Or(p, q) => {
            let pi = infer_ppred(env, inf, p)?;
            let qi = infer_ppred(env, inf, q)?;
            inf.unifier.unify(&pi, &qi)?;
            Ok(pi)
        }
        PPred::Not(p) => infer_ppred(env, inf, p),
        PPred::Conv(p) => {
            let a = inf.unifier.fresh();
            let b = inf.unifier.fresh();
            let pi = infer_ppred(env, inf, p)?;
            inf.unifier.unify(&pi, &Type::pair(a.clone(), b.clone()))?;
            Ok(Type::pair(b, a))
        }
        PPred::ConstP(_) => Ok(inf.unifier.fresh()),
        PPred::CurryP(p, q) => {
            let tq = infer_pquery(env, inf, q)?;
            let pi = infer_ppred(env, inf, p)?;
            let a = inf.unifier.fresh();
            inf.unifier.unify(&pi, &Type::pair(tq, a.clone()))?;
            Ok(a)
        }
    }
}

/// Infer the type of a query pattern.
pub fn infer_pquery(env: &TypeEnv, inf: &mut Inference, q: &PQuery) -> Result<Type, TypeError> {
    match q {
        PQuery::Var(v) => Ok(inf.ovar(v)),
        PQuery::Lit(v) => type_of_value(inf, v),
        PQuery::Extent(name) => match env.extents.get(name) {
            Some(t) => Ok(t.clone()),
            // Unknown extents get a fresh type: queries over ad-hoc test
            // extents still typecheck.
            None => Ok(inf.unifier.fresh()),
        },
        PQuery::PairQ(a, b) => Ok(Type::pair(
            infer_pquery(env, inf, a)?,
            infer_pquery(env, inf, b)?,
        )),
        PQuery::App(f, q) => {
            let tq = infer_pquery(env, inf, q)?;
            let (fi, fo) = infer_pfunc(env, inf, f)?;
            inf.unifier.unify(&fi, &tq)?;
            Ok(fo)
        }
        PQuery::Test(p, q) => {
            let tq = infer_pquery(env, inf, q)?;
            let pi = infer_ppred(env, inf, p)?;
            inf.unifier.unify(&pi, &tq)?;
            Ok(Type::Bool)
        }
        PQuery::Union(a, b) | PQuery::Intersect(a, b) | PQuery::Diff(a, b) => {
            let ta = infer_pquery(env, inf, a)?;
            let tb = infer_pquery(env, inf, b)?;
            let elem = inf.unifier.fresh();
            inf.unifier.unify(&ta, &Type::set(elem.clone()))?;
            inf.unifier.unify(&tb, &Type::set(elem))?;
            Ok(ta)
        }
    }
}

/// Typecheck a concrete function; returns its (resolved) type.
pub fn typecheck_func(env: &TypeEnv, f: &Func) -> Result<FuncType, TypeError> {
    let mut inf = Inference::new();
    let (i, o) = infer_pfunc(env, &mut inf, &PFunc::from_concrete(f))?;
    Ok(FuncType {
        input: inf.unifier.resolve(&i),
        output: inf.unifier.resolve(&o),
    })
}

/// Typecheck a concrete predicate; returns its (resolved) input type.
pub fn typecheck_pred(env: &TypeEnv, p: &Pred) -> Result<Type, TypeError> {
    let mut inf = Inference::new();
    let t = infer_ppred(env, &mut inf, &PPred::from_concrete(p))?;
    Ok(inf.unifier.resolve(&t))
}

/// Typecheck a concrete query; returns its (resolved) type.
pub fn typecheck_query(env: &TypeEnv, q: &Query) -> Result<Type, TypeError> {
    let mut inf = Inference::new();
    let t = infer_pquery(env, &mut inf, &PQuery::from_concrete(q))?;
    Ok(inf.unifier.resolve(&t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::parse::{parse_func, parse_pfunc, parse_query};
    use crate::value::ClassId;

    fn env() -> TypeEnv {
        TypeEnv::paper_env()
    }

    #[test]
    fn prim_types() {
        let t = typecheck_func(&env(), &prim("age")).unwrap();
        assert_eq!(t.input, Type::Obj(ClassId(0)));
        assert_eq!(t.output, Type::Int);
    }

    #[test]
    fn compose_propagates() {
        // city ∘ addr : Person -> Str
        let t = typecheck_func(&env(), &parse_func("city . addr").unwrap()).unwrap();
        assert_eq!(t.input, Type::Obj(ClassId(0)));
        assert_eq!(t.output, Type::Str);
    }

    #[test]
    fn compose_mismatch_rejected() {
        // age ∘ age : Person -> Int, then Int is not Person
        assert!(typecheck_func(&env(), &parse_func("age . age").unwrap()).is_err());
    }

    #[test]
    fn iterate_types() {
        // iterate(Kp(T), age) : {Person} -> {Int}
        let t = typecheck_func(&env(), &parse_func("iterate(Kp(T), age)").unwrap()).unwrap();
        assert_eq!(t.input, Type::set(Type::Obj(ClassId(0))));
        assert_eq!(t.output, Type::set(Type::Int));
    }

    #[test]
    fn paper_queries_typecheck() {
        // T1's both sides, T2's both sides (Figure 4 endpoints)
        for src in [
            "iterate(Kp(T), city) . iterate(Kp(T), addr) ! P",
            "iterate(Kp(T), city . addr) ! P",
            "iterate(gt @ (age, Kf(25)), age) ! P",
            "iterate(Cp(leq, 25), id) . iterate(Kp(T), age) ! P",
        ] {
            let q = parse_query(src).unwrap();
            let t = typecheck_query(&env(), &q).unwrap();
            assert!(
                matches!(t, Type::Set(_)),
                "{src} should be set-typed, got {t}"
            );
        }
    }

    #[test]
    fn garage_queries_typecheck_alike() {
        let kg1 = parse_query(
            "iterate(Kp(T), (id, flat . iter(Kp(T), grgs . pi2) . \
             (id, iter(in @ (pi1, cars . pi2), pi2) . (id, Kf(P))))) ! V",
        )
        .unwrap();
        let kg2 = parse_query(
            "nest(pi1, pi2) . unnest(pi1, pi2) * id . \
             (join(in @ id * cars, id * grgs), pi1) ! [V, P]",
        )
        .unwrap();
        let t1 = typecheck_query(&env(), &kg1).unwrap();
        let t2 = typecheck_query(&env(), &kg2).unwrap();
        assert_eq!(t1, t2, "KG1 : {t1} vs KG2 : {t2}");
    }

    #[test]
    fn pattern_metavars_get_types() {
        // pi1 . ($f, $g) — f's output must match the overall output.
        let env = env();
        let mut inf = Inference::new();
        let pat = parse_pfunc("pi1 . ($f, $g)").unwrap();
        let (i, o) = infer_pfunc(&env, &mut inf, &pat).unwrap();
        let (fi, fo) = inf.fvars.get("f").cloned().unwrap();
        let mut u = inf.unifier.clone();
        // input of f == input of the whole; output of f == output of whole
        assert_eq!(u.resolve(&fi), u.resolve(&i));
        assert_eq!(u.resolve(&fo), u.resolve(&o));
        let _ = &mut u;
    }

    #[test]
    fn test_query_is_bool() {
        let q = parse_query("gt ? [3, 2]").unwrap();
        assert_eq!(typecheck_query(&env(), &q).unwrap(), Type::Bool);
    }

    #[test]
    fn heterogeneous_set_rejected() {
        let v = Value::set([Value::Int(1), Value::Bool(true)]);
        let mut inf = Inference::new();
        assert!(type_of_value(&mut inf, &v).is_err());
    }

    #[test]
    fn unknown_prim_rejected() {
        assert!(matches!(
            typecheck_func(&env(), &prim("salary")),
            Err(TypeError::UnknownPrim(_))
        ));
    }

    #[test]
    fn nest_unnest_types() {
        let t = typecheck_func(&env(), &parse_func("nest(pi1, pi2)").unwrap()).unwrap();
        // [{[k,v]}, {k}] -> {[k, {v}]}
        match (&t.input, &t.output) {
            (Type::Pair(_, _), Type::Set(_)) => {}
            other => panic!("unexpected nest type {other:?}"),
        }
        let t = typecheck_func(&env(), &parse_func("unnest(pi1, pi2)").unwrap()).unwrap();
        match (&t.input, &t.output) {
            (Type::Set(_), Type::Set(_)) => {}
            other => panic!("unexpected unnest type {other:?}"),
        }
    }
}
