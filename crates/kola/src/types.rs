//! Types for KOLA terms.
//!
//! The paper assumes well-formedness of queries without spelling out a type
//! system; its Larch specification [10] is typed. We provide a small
//! Hindley–Milner-style type language: it is what lets the verification
//! harness (`kola-verify`) instantiate rule metavariables *soundly*, and what
//! lets the rewrite engine check that rules are type-preserving.

use crate::value::{ClassId, Sym};
use std::collections::BTreeMap;
use std::fmt;

/// A type in the KOLA universe.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Type {
    /// The unit type.
    Unit,
    /// Booleans.
    Bool,
    /// 64-bit integers.
    Int,
    /// Strings.
    Str,
    /// Objects of a schema class.
    Obj(ClassId),
    /// Pairs `[a, b]`.
    Pair(Box<Type>, Box<Type>),
    /// Finite sets `{a}`.
    Set(Box<Type>),
    /// Finite bags (multisets) `{|a|}` — the §6 extension.
    Bag(Box<Type>),
    /// A unification variable (only appears during inference).
    Var(u32),
}

impl Type {
    /// `Pair(a, b)` without the boxing noise.
    pub fn pair(a: Type, b: Type) -> Type {
        Type::Pair(Box::new(a), Box::new(b))
    }

    /// `Set(t)` without the boxing noise.
    pub fn set(t: Type) -> Type {
        Type::Set(Box::new(t))
    }

    /// `Bag(t)` without the boxing noise.
    pub fn bag(t: Type) -> Type {
        Type::Bag(Box::new(t))
    }

    /// True iff no [`Type::Var`] occurs in the type.
    pub fn is_ground(&self) -> bool {
        match self {
            Type::Var(_) => false,
            Type::Pair(a, b) => a.is_ground() && b.is_ground(),
            Type::Set(t) | Type::Bag(t) => t.is_ground(),
            _ => true,
        }
    }

    /// Structural size (node count).
    pub fn size(&self) -> usize {
        match self {
            Type::Pair(a, b) => 1 + a.size() + b.size(),
            Type::Set(t) | Type::Bag(t) => 1 + t.size(),
            _ => 1,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Unit => write!(f, "unit"),
            Type::Bool => write!(f, "bool"),
            Type::Int => write!(f, "int"),
            Type::Str => write!(f, "str"),
            Type::Obj(c) => write!(f, "obj{}", c.0),
            Type::Pair(a, b) => write!(f, "[{a}, {b}]"),
            Type::Set(t) => write!(f, "{{{t}}}"),
            Type::Bag(t) => write!(f, "{{|{t}|}}"),
            Type::Var(v) => write!(f, "t{v}"),
        }
    }
}

/// The type of a KOLA function: `input -> output`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FuncType {
    /// Argument type.
    pub input: Type,
    /// Result type.
    pub output: Type,
}

impl fmt::Display for FuncType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.input, self.output)
    }
}

/// Errors produced by type inference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// Two types could not be unified.
    Mismatch(Type, Type),
    /// The occurs check failed (`t0` occurs inside the other type).
    Occurs(u32, Type),
    /// An unknown schema primitive (attribute) name was referenced.
    UnknownPrim(Sym),
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::Mismatch(a, b) => write!(f, "type mismatch: {a} vs {b}"),
            TypeError::Occurs(v, t) => write!(f, "occurs check: t{v} in {t}"),
            TypeError::UnknownPrim(s) => write!(f, "unknown primitive: {s}"),
        }
    }
}

impl std::error::Error for TypeError {}

/// A unification context: fresh-variable supply plus a substitution.
#[derive(Debug, Default, Clone)]
pub struct Unifier {
    next: u32,
    subst: BTreeMap<u32, Type>,
}

impl Unifier {
    /// A fresh, empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a fresh type variable.
    pub fn fresh(&mut self) -> Type {
        let v = self.next;
        self.next += 1;
        Type::Var(v)
    }

    /// Resolve a type through the current substitution (shallow head, deep body).
    pub fn resolve(&self, t: &Type) -> Type {
        match t {
            Type::Var(v) => match self.subst.get(v) {
                Some(bound) => self.resolve(bound),
                None => t.clone(),
            },
            Type::Pair(a, b) => Type::pair(self.resolve(a), self.resolve(b)),
            Type::Set(s) => Type::set(self.resolve(s)),
            Type::Bag(s) => Type::bag(self.resolve(s)),
            _ => t.clone(),
        }
    }

    fn occurs(&self, v: u32, t: &Type) -> bool {
        match t {
            Type::Var(w) => {
                if *w == v {
                    true
                } else if let Some(bound) = self.subst.get(w) {
                    let bound = bound.clone();
                    self.occurs(v, &bound)
                } else {
                    false
                }
            }
            Type::Pair(a, b) => self.occurs(v, a) || self.occurs(v, b),
            Type::Set(s) | Type::Bag(s) => self.occurs(v, s),
            _ => false,
        }
    }

    /// Unify two types, extending the substitution. Errors on clash/occurs.
    pub fn unify(&mut self, a: &Type, b: &Type) -> Result<(), TypeError> {
        let a = self.resolve(a);
        let b = self.resolve(b);
        match (&a, &b) {
            (Type::Var(v), _) => {
                if a == b {
                    Ok(())
                } else if self.occurs(*v, &b) {
                    Err(TypeError::Occurs(*v, b))
                } else {
                    self.subst.insert(*v, b);
                    Ok(())
                }
            }
            (_, Type::Var(_)) => self.unify(&b, &a),
            (Type::Pair(a1, a2), Type::Pair(b1, b2)) => {
                self.unify(a1, b1)?;
                self.unify(a2, b2)
            }
            (Type::Set(s), Type::Set(t)) => self.unify(s, t),
            (Type::Bag(s), Type::Bag(t)) => self.unify(s, t),
            _ => {
                if a == b {
                    Ok(())
                } else {
                    Err(TypeError::Mismatch(a, b))
                }
            }
        }
    }

    /// Replace any remaining type variables with a default ground type.
    ///
    /// Used by the verification harness: after inferring the constraints a
    /// rule imposes, leftover polymorphism is pinned to `default` so terms
    /// can be generated.
    pub fn ground(&self, t: &Type, default: &Type) -> Type {
        match self.resolve(t) {
            Type::Var(_) => default.clone(),
            Type::Pair(a, b) => Type::pair(self.ground(&a, default), self.ground(&b, default)),
            Type::Set(s) => Type::set(self.ground(&s, default)),
            Type::Bag(s) => Type::bag(self.ground(&s, default)),
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unify_var_binds() {
        let mut u = Unifier::new();
        let v = u.fresh();
        u.unify(&v, &Type::Int).unwrap();
        assert_eq!(u.resolve(&v), Type::Int);
    }

    #[test]
    fn unify_structural() {
        let mut u = Unifier::new();
        let v = u.fresh();
        let w = u.fresh();
        u.unify(
            &Type::pair(v.clone(), Type::set(w.clone())),
            &Type::pair(Type::Int, Type::set(Type::Bool)),
        )
        .unwrap();
        assert_eq!(u.resolve(&v), Type::Int);
        assert_eq!(u.resolve(&w), Type::Bool);
    }

    #[test]
    fn unify_mismatch() {
        let mut u = Unifier::new();
        assert!(u.unify(&Type::Int, &Type::Bool).is_err());
    }

    #[test]
    fn occurs_check() {
        let mut u = Unifier::new();
        let v = u.fresh();
        let err = u.unify(&v, &Type::set(v.clone()));
        assert!(matches!(err, Err(TypeError::Occurs(_, _))));
    }

    #[test]
    fn grounding_pins_leftover_vars() {
        let mut u = Unifier::new();
        let v = u.fresh();
        let t = Type::set(v);
        assert_eq!(u.ground(&t, &Type::Int), Type::set(Type::Int));
        // `ground` takes &self; binding afterwards still works through a new unify
        let w = u.fresh();
        u.unify(&w, &Type::Str).unwrap();
        assert_eq!(u.ground(&w, &Type::Int), Type::Str);
    }

    #[test]
    fn resolve_is_deep() {
        let mut u = Unifier::new();
        let a = u.fresh();
        let b = u.fresh();
        u.unify(&a, &Type::set(b.clone())).unwrap();
        u.unify(&b, &Type::Int).unwrap();
        assert_eq!(u.resolve(&a), Type::set(Type::Int));
    }
}
