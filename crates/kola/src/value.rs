//! The runtime value universe that KOLA (and AQUA) queries compute over.
//!
//! KOLA's semantics (Tables 1 and 2 of the paper) are defined over objects,
//! pairs and sets. To make query-equivalence *testable*, every value is
//! totally ordered ([`Ord`]) and sets are represented canonically as
//! [`BTreeSet`]s, so two evaluations are equivalent iff the resulting
//! [`Value`]s are `==`.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// Interned-ish string used for attribute names, extents and string values.
///
/// `Arc<str>` keeps clones cheap: terms and values are cloned heavily during
/// rewriting and evaluation.
pub type Sym = Arc<str>;

/// Identifier of a class (abstract data type) in a [`crate::schema::Schema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassId(pub u16);

/// Identifier of an object in a [`crate::db::Db`]: a class plus an index into
/// that class's extent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjId {
    /// The class the object belongs to.
    pub class: ClassId,
    /// The index of the object within its class's object table.
    pub idx: u32,
}

/// A canonical, ordered set of values.
///
/// The paper's set semantics are duplicate-free; `BTreeSet` gives us that
/// plus a canonical iteration order, so evaluation is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ValueSet(pub BTreeSet<Value>);

impl ValueSet {
    /// The empty set.
    pub fn new() -> Self {
        ValueSet(BTreeSet::new())
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True iff the set has no elements.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Insert a value (deduplicating).
    pub fn insert(&mut self, v: Value) {
        self.0.insert(v);
    }

    /// Membership test.
    pub fn contains(&self, v: &Value) -> bool {
        self.0.contains(v)
    }

    /// Iterate elements in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = &Value> {
        self.0.iter()
    }

    /// Set union.
    pub fn union(&self, other: &ValueSet) -> ValueSet {
        ValueSet(self.0.union(&other.0).cloned().collect())
    }

    /// Set intersection.
    pub fn intersect(&self, other: &ValueSet) -> ValueSet {
        ValueSet(self.0.intersection(&other.0).cloned().collect())
    }

    /// Set difference (`self - other`).
    pub fn difference(&self, other: &ValueSet) -> ValueSet {
        ValueSet(self.0.difference(&other.0).cloned().collect())
    }
}

impl FromIterator<Value> for ValueSet {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        ValueSet(iter.into_iter().collect())
    }
}

impl IntoIterator for ValueSet {
    type Item = Value;
    type IntoIter = std::collections::btree_set::IntoIter<Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

/// A runtime value.
///
/// The universe is closed under pairing and set formation, mirroring the
/// complex-object data model of the paper (§1.1): objects may refer to sets
/// and to each other (via [`ObjId`] references into a [`crate::db::Db`]).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// The unit value (result of projecting nothing; also a handy dummy).
    Unit,
    /// A boolean.
    Bool(bool),
    /// A 64-bit integer.
    Int(i64),
    /// A string.
    Str(Sym),
    /// An ordered pair, written `[x, y]` in the paper.
    Pair(Box<(Value, Value)>),
    /// A finite set.
    Set(ValueSet),
    /// A finite bag (multiset) — the §6 bulk-type extension.
    Bag(crate::bag::ValueBag),
    /// A reference to an object held by a [`crate::db::Db`].
    Obj(ObjId),
}

impl Value {
    /// Construct a pair `[a, b]`.
    pub fn pair(a: Value, b: Value) -> Value {
        Value::Pair(Box::new((a, b)))
    }

    /// Construct a string value.
    pub fn str(s: &str) -> Value {
        Value::Str(Arc::from(s))
    }

    /// Construct a set from an iterator of elements.
    pub fn set<I: IntoIterator<Item = Value>>(items: I) -> Value {
        Value::Set(items.into_iter().collect())
    }

    /// The empty set.
    pub fn empty_set() -> Value {
        Value::Set(ValueSet::new())
    }

    /// Project the components of a pair, if this is one.
    pub fn as_pair(&self) -> Option<(&Value, &Value)> {
        match self {
            Value::Pair(p) => Some((&p.0, &p.1)),
            _ => None,
        }
    }

    /// Borrow the underlying set, if this is one.
    pub fn as_set(&self) -> Option<&ValueSet> {
        match self {
            Value::Set(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow the integer, if this is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Borrow the boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// A short name for the value's shape, used in error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Unit => "unit",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Str(_) => "string",
            Value::Pair(_) => "pair",
            Value::Set(_) => "set",
            Value::Bag(_) => "bag",
            Value::Obj(_) => "object",
        }
    }

    /// Total number of nodes in this value (for size accounting in tests).
    pub fn size(&self) -> usize {
        match self {
            Value::Pair(p) => 1 + p.0.size() + p.1.size(),
            Value::Set(s) => 1 + s.iter().map(Value::size).sum::<usize>(),
            Value::Bag(b) => 1 + b.iter().map(|(v, _)| v.size()).sum::<usize>(),
            _ => 1,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Bool(b) => write!(f, "{}", if *b { "T" } else { "F" }),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Pair(p) => write!(f, "[{}, {}]", p.0, p.1),
            Value::Set(s) => {
                write!(f, "{{")?;
                for (i, v) in s.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
            Value::Bag(b) => write!(f, "{b}"),
            Value::Obj(o) => write!(f, "#{}.{}", o.class.0, o.idx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sets_deduplicate_and_order() {
        let s = Value::set([Value::Int(3), Value::Int(1), Value::Int(3), Value::Int(2)]);
        match &s {
            Value::Set(vs) => {
                let items: Vec<_> = vs.iter().cloned().collect();
                assert_eq!(items, vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
            }
            _ => panic!("not a set"),
        }
    }

    #[test]
    fn pair_projections() {
        let p = Value::pair(Value::Int(1), Value::str("x"));
        let (a, b) = p.as_pair().unwrap();
        assert_eq!(a, &Value::Int(1));
        assert_eq!(b, &Value::str("x"));
    }

    #[test]
    fn value_equality_is_structural() {
        let a = Value::set([Value::pair(Value::Int(1), Value::Int(2))]);
        let b = Value::set([Value::pair(Value::Int(1), Value::Int(2))]);
        assert_eq!(a, b);
    }

    #[test]
    fn set_algebra() {
        let a: ValueSet = [Value::Int(1), Value::Int(2)].into_iter().collect();
        let b: ValueSet = [Value::Int(2), Value::Int(3)].into_iter().collect();
        assert_eq!(a.union(&b).len(), 3);
        assert_eq!(a.intersect(&b).len(), 1);
        assert_eq!(a.difference(&b).len(), 1);
        assert!(a.contains(&Value::Int(1)));
        assert!(!a.contains(&Value::Int(3)));
    }

    #[test]
    fn display_forms() {
        let v = Value::pair(Value::Int(1), Value::set([Value::Bool(true)]));
        assert_eq!(v.to_string(), "[1, {T}]");
        assert_eq!(Value::Unit.to_string(), "()");
    }

    #[test]
    fn size_counts_nodes() {
        let v = Value::pair(Value::Int(1), Value::set([Value::Int(2), Value::Int(3)]));
        // pair + int + set + 2 ints
        assert_eq!(v.size(), 5);
    }
}
