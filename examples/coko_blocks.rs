//! Writing your own COKO rule blocks, and letting the cost model pick
//! among the plans different blocks produce.
//!
//! ```sh
//! cargo run --example coko_blocks
//! ```

use kola_coko::{compile, parse_program};
use kola_exec::cost::{choose, Stats};
use kola_exec::datagen::{generate, DataSpec};
use kola_exec::Mode;
use kola_rewrite::engine::Trace;
use kola_rewrite::strategy::Runner;
use kola_rewrite::{Catalog, PropDb};

/// A user-written COKO program: one block fuses pipelines for fewer
/// passes, another *splits* them (rule 12 right-to-left) so a cheap filter
/// runs before an expensive projection.
const MY_COKO: &str = r#"
-- Fuse select/map cascades into single passes (fewer scans).
TRANSFORMATION FusePasses
BEGIN
  FIX { [11], [12], [3], [5], [e32], [1], [2] }
END

-- The opposite direction: split a fused pass into filter-then-map.
-- (Rules 13 and 7 first rewrite the predicate into the curried form rule
-- 12 recognizes -- the same moves as Figure 4's T2K derivation.)
TRANSFORMATION SplitFilterFirst
BEGIN
  TRY [13] ; TRY [7] ; REPEAT [12-1]
END

TRANSFORMATION TidyThenFuse
USES FusePasses
BEGIN
  TRY FusePasses
END
"#;

fn main() {
    let program = parse_program(MY_COKO).expect("program parses");
    println!(
        "parsed {} transformations: {}\n",
        program.transformations.len(),
        program
            .transformations
            .iter()
            .map(|t| t.name.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );

    let catalog = Catalog::paper();
    let props = PropDb::new();
    let runner = Runner::new(&catalog, &props);

    // The query: ages of people over 25, in its fused single-pass form.
    let q = kola::parse::parse_query("iterate(gt @ (age, Kf(25)), age) ! P").expect("well-formed");
    println!("input:\n  {q}\n");

    let mut plans = vec![q.clone()];
    for name in ["SplitFilterFirst", "TidyThenFuse"] {
        let strategy = compile(&program, name).expect("block compiles");
        let mut trace = Trace::new();
        let (out, _) = runner.run(&strategy, q.clone(), &mut trace);
        println!(
            "after {name} ({} rule applications):\n  {out}\n",
            trace.steps.len()
        );
        plans.push(out);
    }
    let db = generate(&DataSpec::scaled(10, 1));
    let mut results = Vec::new();
    for plan in &plans {
        let mut ex = kola_exec::Executor::new(&db, Mode::Naive);
        results.push(ex.run(plan).expect("plan runs"));
    }
    assert!(results.windows(2).all(|w| w[0] == w[1]));
    println!("all block outputs produce identical results on data. ✓\n");

    // Cost-based choice on the garage pair: the model ranks the untangled
    // nest-of-join under hash operators ahead of the hidden join.
    let kg1 = kola_rewrite::hidden_join::garage_query_kg1();
    let kg2 = kola_rewrite::hidden_join::garage_query_kg2();
    let stats = Stats::collect(&db);
    let (winner, estimates) = choose(&stats, Mode::Smart, &[&kg1, &kg2]);
    println!("cost-based choice (garage query, hash operators):");
    for (i, (name, e)) in ["KG1 (hidden join)", "KG2 (nest of join)"]
        .iter()
        .zip(&estimates)
        .enumerate()
    {
        let marker = if i == winner { "  <- chosen" } else { "" };
        println!("  {name:<20} {:>10.0} est. ops{marker}", e.cost);
    }
    assert_eq!(winner, 1, "the estimator must prefer the untangled form");
}
