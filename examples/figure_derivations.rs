//! Print the paper's derivations (Figures 4 and 6) exactly as rule-justified
//! step chains, straight from the rewrite engine's trace.
//!
//! ```sh
//! cargo run --example figure_derivations
//! ```

use kola_frontend::translate_query;
use kola_rewrite::engine::Trace;
use kola_rewrite::strategy::{apply, fix, seq, Runner};
use kola_rewrite::{Catalog, PropDb, Strategy};

fn show(title: &str, start: &kola::Query, strategy: &Strategy) {
    let catalog = Catalog::paper();
    let props = PropDb::new();
    let runner = Runner::new(&catalog, &props);
    println!("== {title} ==");
    println!("      {start}");
    let mut trace = Trace::new();
    let (_, _) = runner.run(strategy, start.clone(), &mut trace);
    for step in &trace.steps {
        println!("  =[{:>4}]=>  {}", step.justification(), step.after);
    }
    println!();
}

fn main() {
    // Figure 4, left column: T1K.
    let t1 = kola::parse::parse_query("iterate(Kp(T), city) . iterate(Kp(T), addr) ! P")
        .expect("well-formed");
    show(
        "Figure 4 — T1K (compose the maps)",
        &t1,
        &seq(vec![apply("11"), apply("6"), apply("5")]),
    );

    // Figure 4, right column: T2K.
    let t2 = kola::parse::parse_query("iterate(Kp(T), age) . iterate(gt @ (age, Kf(25)), id) ! P")
        .expect("well-formed");
    show(
        "Figure 4 — T2K (decompose the predicate)",
        &t2,
        &seq(vec![
            apply("11"),
            fix(&["3", "e32", "1"]),
            apply("13"),
            apply("7"),
            apply("12-1"),
        ]),
    );

    // Figure 6: K4's code motion (and K3's structural block).
    let figure6 = Strategy::Seq(vec![
        fix(&["13", "7", "14", "15", "16", "10", "8"]),
        fix(&["9", "10", "1", "2", "3", "8", "14-1"]),
    ]);
    let k4 = translate_query(&kola_aqua::rules::query_a4()).expect("translates");
    show("Figure 6 — K4 (code motion fires)", &k4, &figure6);

    let k3 = translate_query(&kola_aqua::rules::query_a3()).expect("translates");
    show(
        "Figure 6 — K3 (rule 15 structurally blocked; iter survives)",
        &k3,
        &figure6,
    );

    println!(
        "note: the paper prints the converse of `gt` as `leq`; the sound\n\
         converse is strict `lt` (see EXPERIMENTS.md E5), so these chains\n\
         print `Cp(lt, 25)` where the figures print `Cp(leq, 25)`."
    );
}
