//! The "Garage Query" of Figure 3, end to end: the §4.1 five-step
//! hidden-join untangling, with the per-step snapshots the paper prints,
//! an equivalence check on data, and the execution-cost payoff.
//!
//! ```sh
//! cargo run --example garage_query
//! ```

use kola_exec::datagen::{generate, DataSpec};
use kola_exec::{Executor, Mode};
use kola_rewrite::hidden_join::{garage_query_kg1, garage_query_kg2, untangle};
use kola_rewrite::{Catalog, PropDb};

fn main() {
    let kg1 = garage_query_kg1();
    println!("KG1 (hidden join, as translated from OQL):\n  {kg1}\n");

    let catalog = Catalog::paper();
    let props = PropDb::new();
    let out = untangle(&catalog, &props, &kg1);

    println!("five-step untangling (§4.1):");
    for (name, q) in &out.snapshots {
        println!("\nafter {name}:\n  {q}");
    }
    println!(
        "\ntotal: {} rule applications, every one a declarative pattern \
         rule from Figures 5/8\n",
        out.trace.steps.len()
    );

    assert_eq!(out.query, garage_query_kg2());
    println!("result is literally Figure 3's KG2. ✓\n");

    // Equivalence and cost on data, across scales.
    println!(
        "{:>8} {:>14} {:>14} {:>9}",
        "|V|+|P|", "KG1 ops", "KG2 ops (hash)", "speedup"
    );
    for factor in [2, 4, 8, 16] {
        let db = generate(&DataSpec::scaled(factor, 7));
        let mut naive = Executor::new(&db, Mode::Smart);
        let v1 = naive.run(&kg1).expect("KG1 runs");
        let mut smart = Executor::new(&db, Mode::Smart);
        let v2 = smart.run(&out.query).expect("KG2 runs");
        assert_eq!(v1, v2, "KG1 and KG2 agree");
        let (c1, c2) = (naive.stats.total(), smart.stats.total());
        println!(
            "{:>8} {:>14} {:>14} {:>8.1}x",
            16 * factor,
            c1,
            c2,
            c1 as f64 / c2 as f64
        );
    }
    println!(
        "\n(the hidden join exposes no join node, so hash execution cannot \
         help it; untangling is what unlocks the speedup)"
    );
}
