//! A full optimizer pipeline: OQL text → AQUA (λ-based) → KOLA
//! (variable-free) → COKO-driven optimization → execution.
//!
//! ```sh
//! cargo run --example oql_pipeline
//! ```

use kola_coko::stdlib::untangle_strategy;
use kola_exec::datagen::{generate, DataSpec};
use kola_exec::{Executor, Mode};
use kola_frontend::{measure, parse_oql, translate_query};
use kola_rewrite::engine::Trace;
use kola_rewrite::strategy::Runner;
use kola_rewrite::{Catalog, PropDb};

fn main() {
    let src = "select [v, flatten(select p.grgs from p in P where v in p.cars)] \
               from v in V";
    println!("OQL:\n  {src}\n");

    // 1. Parse to AQUA (the variable-based algebra of §2).
    let aqua = parse_oql(src).expect("parses");
    println!("AQUA (λ-based):\n  {aqua}\n");

    // 2. Translate to KOLA (the combinator algebra of §3): variables
    //    compiled into explicit environments.
    let kola_q = translate_query(&aqua).expect("translates");
    println!("KOLA (variable-free):\n  {kola_q}\n");
    let report = measure(&aqua).expect("measures");
    println!(
        "translation size: AQUA {} nodes -> KOLA {} nodes \
         (ratio {:.2}, nesting depth m = {})\n",
        report.aqua_size,
        report.kola_size,
        report.ratio(),
        report.env_depth
    );

    // 3. Optimize with the COKO hidden-join pipeline.
    let catalog = Catalog::paper();
    let props = PropDb::new();
    let runner = Runner::new(&catalog, &props);
    let mut trace = Trace::new();
    let (optimized, _) = runner.run(
        &untangle_strategy().expect("stdlib compiles"),
        kola_q.clone(),
        &mut trace,
    );
    println!(
        "optimized ({} rule applications):\n  {optimized}\n",
        trace.steps.len()
    );

    // 4. Execute. Check all three stages agree on the data.
    let db = generate(&DataSpec::scaled(6, 3));
    let aqua_val = kola_aqua::eval_closed(&db, &aqua).expect("AQUA evaluates");
    let kola_val = kola::eval_query(&db, &kola_q).expect("KOLA evaluates");
    let mut ex = Executor::new(&db, Mode::Smart);
    let opt_val = ex.run(&optimized).expect("optimized plan evaluates");
    assert_eq!(aqua_val, kola_val, "translation preserved the meaning");
    assert_eq!(kola_val, opt_val, "optimization preserved the meaning");

    let mut base = Executor::new(&db, Mode::Smart);
    base.run(&kola_q).expect("unoptimized plan evaluates");
    println!(
        "executed: {} result groups; {} ops unoptimized vs {} ops optimized",
        opt_val.as_set().map(|s| s.len()).unwrap_or(0),
        base.stats.total(),
        ex.stats.total()
    );
}
