//! Quickstart: parse a KOLA query, optimize it with the rule catalog, and
//! run it on a generated database.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use kola_coko::stdlib::simplify_strategy;
use kola_exec::datagen::{generate, DataSpec};
use kola_exec::{Executor, Mode};
use kola_rewrite::engine::Trace;
use kola_rewrite::strategy::Runner;
use kola_rewrite::{Catalog, PropDb};

fn main() {
    // 1. A populated object database over the paper's schema
    //    (Person / Address / Vehicle), with extents P and V bound.
    let db = generate(&DataSpec::default());
    println!(
        "database: {} persons, {} vehicles\n",
        db.extent("P").unwrap().as_set().unwrap().len(),
        db.extent("V").unwrap().as_set().unwrap().len()
    );

    // 2. Parse a query in KOLA's concrete syntax. This one is Figure 4's
    //    T2 example: ages of people older than 25, written as a cascade of
    //    two set passes.
    let query =
        kola::parse::parse_query("iterate(Kp(T), age) . iterate(gt @ (age, Kf(25)), id) ! P")
            .expect("well-formed query");
    println!("input query:\n  {query}\n");

    // 3. Typecheck it.
    let env = kola::typecheck::TypeEnv::paper_env();
    let ty = kola::typecheck::typecheck_query(&env, &query).expect("well-typed");
    println!("type: {ty}\n");

    // 4. Optimize with the COKO `Simplify` block (identity elimination,
    //    predicate simplification, iterate fusion). Every step is a
    //    declarative rule application — no code runs inside rules.
    let catalog = Catalog::paper();
    let props = PropDb::new();
    let runner = Runner::new(&catalog, &props);
    let mut trace = Trace::new();
    let (optimized, _) = runner.run(
        &simplify_strategy().expect("stdlib compiles"),
        query.clone(),
        &mut trace,
    );
    println!("derivation:");
    print!("{trace}");
    println!("\noptimized query:\n  {optimized}\n");

    // 5. Execute both and confirm they agree; count operations.
    let mut before = Executor::new(&db, Mode::Naive);
    let before_val = before.run(&query).expect("evaluates");
    let mut after = Executor::new(&db, Mode::Naive);
    let after_val = after.run(&optimized).expect("evaluates");
    assert_eq!(before_val, after_val, "optimization preserved the meaning");

    println!("result: {after_val}");
    println!(
        "\ncost before: {} ops, after: {} ops ({} passes fused into {})",
        before.stats.total(),
        after.stats.total(),
        query.to_string().matches("iterate(").count(),
        optimized.to_string().matches("iterate(").count(),
    );
}
