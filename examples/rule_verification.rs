//! Verify the entire rule catalog by randomized, type-directed testing —
//! the repository's substitute for the paper's Larch/LP proofs.
//!
//! ```sh
//! cargo run --release --example rule_verification
//! ```

use kola::typecheck::TypeEnv;
use kola_exec::datagen::{generate, DataSpec};
use kola_rewrite::{Catalog, RuleSource};
use kola_verify::verify_catalog;

fn main() {
    let env = TypeEnv::paper_env();
    let db = generate(&DataSpec::small(20240705));
    let catalog = Catalog::paper();
    println!(
        "verifying {} rules x 50 random typed instantiations each…\n",
        catalog.len()
    );

    let reports = verify_catalog(&env, &db, &catalog, 50, 1);
    let mut by_source = std::collections::BTreeMap::new();
    let mut failures = Vec::new();
    for (rule, report) in catalog.rules().iter().zip(&reports) {
        let entry = by_source
            .entry(format!("{:?}", rule.source))
            .or_insert((0, 0));
        entry.0 += 1;
        if report.verified() {
            entry.1 += 1;
        } else {
            failures.push(report.clone());
        }
    }

    println!("{:<12} {:>6} {:>9}", "source", "rules", "verified");
    for (source, (total, ok)) in &by_source {
        println!("{source:<12} {total:>6} {ok:>9}");
    }
    let total_trials: usize = reports.iter().map(|r| r.trials).sum();
    let total_passed: usize = reports.iter().map(|r| r.passed).sum();
    println!(
        "\n{} rules, {} trials, {} passed, {} failures",
        reports.len(),
        total_trials,
        total_passed,
        failures.len()
    );
    for f in &failures {
        println!("  {f}");
    }

    // Show the harness has teeth: a deliberately broken rule is caught.
    let broken = kola_rewrite::Rule::func(
        "demo-broken",
        "pi1 projected to the wrong side",
        "pi1 . ($f, $g)",
        "$g",
    );
    let report = kola_verify::check_rule(&env, &db, &broken, 50, 2);
    println!("\nsanity check — a deliberately wrong rule:\n  {report}");
    assert!(!report.verified(), "harness must catch the broken rule");
    assert!(failures.is_empty(), "catalog must verify");

    // Figure-5 provenance counts (E11).
    let f5 = catalog
        .rules()
        .iter()
        .filter(|r| r.source == RuleSource::Figure5)
        .count();
    let f8 = catalog
        .rules()
        .iter()
        .filter(|r| r.source == RuleSource::Figure8)
        .count();
    println!(
        "\nFigure 5 rules: {f5}; Figure 8 rules: {f8}; extended pool: {}",
        catalog.len() - f5 - f8
    );
}
