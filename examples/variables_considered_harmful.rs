//! §2 vs §3, side by side: the A3/A4 pair of Figure 2.
//!
//! Over AQUA the two queries are structurally identical up to one variable
//! name, so a rule distinguishing them needs a *head routine* doing
//! free-variable analysis. Over KOLA they differ structurally (π1 vs π2),
//! so a plain pattern decides.
//!
//! ```sh
//! cargo run --example variables_considered_harmful
//! ```

use kola_aqua::rules::{code_motion, query_a3, query_a4};
use kola_aqua::Machinery;
use kola_frontend::translate_query;
use kola_rewrite::engine::{rewrite_once_query, Oriented};
use kola_rewrite::{Catalog, PropDb};

fn main() {
    let a3 = query_a3();
    let a4 = query_a4();
    println!("A3 (inner variable):\n  {a3}");
    println!("A4 (outer variable):\n  {a4}\n");
    println!(
        "(structurally identical: both are app(λp. [p, sel(λc. _.age > 25)\
         (p.child)])(P) — only the variable differs)\n"
    );

    // --- the AQUA side: head routine with environmental analysis ---
    println!("== AQUA: code-motion rule with a head routine ==");
    for (name, q) in [("A3", &a3), ("A4", &a4)] {
        let mut m = Machinery::default();
        match code_motion(q, &mut m) {
            Some(out) => println!(
                "{name}: TRANSFORMED (machinery: {} free-var analyses)\n  -> {out}",
                m.free_var_analyses
            ),
            None => println!(
                "{name}: rejected (machinery: {} free-var analyses — code ran \
                 even to say no)",
                m.free_var_analyses
            ),
        }
    }

    // --- the KOLA side: the difference is structural ---
    println!("\n== KOLA: the same decision by pure pattern matching ==");
    let k3 = translate_query(&a3).expect("translates");
    let k4 = translate_query(&a4).expect("translates");
    println!("K3:\n  {k3}");
    println!("K4:\n  {k4}\n");

    let catalog = Catalog::paper();
    let props = PropDb::new();
    // Drive each to the point where rule 15 (iter-env-test) decides.
    let prep: Vec<Oriented> = ["13", "7", "14"]
        .iter()
        .map(|id| Oriented::fwd(catalog.get(id).expect("catalog rule")))
        .collect();
    let decide = [Oriented::fwd(catalog.get("15").expect("rule 15"))];

    for (name, q) in [("K3", &k3), ("K4", &k4)] {
        let mut cur = q.clone();
        while let Some(step) = rewrite_once_query(&prep, &cur, &props) {
            cur = step.result.normalize();
        }
        match rewrite_once_query(&decide, &cur, &props) {
            Some(step) => println!("{name}: rule 15 fires — loop removed\n  -> {}", step.result),
            None => println!(
                "{name}: rule 15 structurally inapplicable (its head wants \
                 `… @ pi1`, this query has `… @ pi2`) — no code consulted"
            ),
        }
    }
}
