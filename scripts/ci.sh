#!/usr/bin/env bash
# Offline CI gate: formatting, lints, release build, full test suite.
# No network access is assumed anywhere (--offline); the workspace has no
# external crate dependencies.
#
#   --bench-smoke   additionally run the engine-mode benchmark with short
#                   iteration counts, regenerating BENCH_rewrite.json and
#                   failing if the indexed engine is slower than the naive
#                   engine on the fig4 workload, or if the catalog-size
#                   sweep shows per-step match cost under the
#                   discrimination-tree index growing more than 20% from
#                   the 154-rule seed catalog to the full 500+-rule closed
#                   catalog; then run the service soak benchmark with its
#                   scaling gate (see below).
#   --egraph-smoke  additionally run the equality-saturation differential
#                   gate at full depth: the 1000-seed parity corpus in
#                   release mode (extracted cost <= fixpoint cost on every
#                   seed, semantic spot-checks on a sampled subset). The
#                   default path always runs a 50-seed release smoke of the
#                   same gate plus the Figure 3 rediscovery test.
#   --chaos-smoke   additionally run a 5-seed matrix of 100-request chaos
#                   soaks against the optimization service, failing on any
#                   escaped panic, unclassified request, or semantic-gate
#                   violation under any seed.
#   --tenant-smoke  additionally run a two-tenant noisy-neighbor soak: a
#                   clean victim tenant against an aggressor pouring
#                   poison-rule panics and admission floods into the same
#                   workers, failing if the victim's outcome taxonomy
#                   changes, a breaker charge or cache invalidation crosses
#                   the tenant wall, or the per-tenant books don't balance.
#   --cache-smoke   additionally run the plan-cache smoke gate: a short
#                   repeated-traffic soak at a 90% target hit rate (fails
#                   below 85% achieved, or on any conservation violation)
#                   plus a cache-on vs cache-off parity stream with a
#                   breaker trip and reset mid-stream (fails on any
#                   response divergence).
#   --obs-smoke     additionally run a traced 600-request chaos soak,
#                   validate the metrics-conservation verdict, the
#                   trace-replay tally, and the <5% trace-ring loss bound
#                   in BENCH_obs.json, and re-run the service scaling gates
#                   (clean stream with tracing disabled, to confirm the
#                   observability layer costs nothing when off).
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_SMOKE_RUN=0
CHAOS_SMOKE_RUN=0
OBS_SMOKE_RUN=0
CACHE_SMOKE_RUN=0
TENANT_SMOKE_RUN=0
EGRAPH_SMOKE_RUN=0
for arg in "$@"; do
  case "$arg" in
    --bench-smoke) BENCH_SMOKE_RUN=1 ;;
    --chaos-smoke) CHAOS_SMOKE_RUN=1 ;;
    --obs-smoke) OBS_SMOKE_RUN=1 ;;
    --cache-smoke) CACHE_SMOKE_RUN=1 ;;
    --tenant-smoke) TENANT_SMOKE_RUN=1 ;;
    --egraph-smoke) EGRAPH_SMOKE_RUN=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo build --release"
cargo build --workspace --release --offline

echo "== cargo test"
cargo test --workspace --offline -q

# The equality-saturation gates ride the default path: a 50-seed release
# run of the differential parity corpus (extracted cost <= fixpoint cost,
# sampled semantic spot-checks) plus the Figure 3 rediscovery test (plain
# saturation finds the hidden-join plan the scripted pipeline derives).
echo "== egraph smoke (50-seed parity gate + Figure 3 rediscovery)"
EGRAPH_SEEDS=50 cargo test --release --offline -q \
  --test egraph_parity --test egraph_fig3

if [ "$EGRAPH_SMOKE_RUN" = 1 ]; then
  echo "== egraph full (1000-seed parity corpus, release)"
  EGRAPH_SEEDS=1000 cargo test --release --offline -q --test egraph_parity
fi

if [ "$BENCH_SMOKE_RUN" = 1 ]; then
  echo "== bench smoke (engine_modes, enforced)"
  BENCH_SMOKE=1 BENCH_ENFORCE=1 \
    cargo bench -p kola-bench --bench engine_modes --offline

  # Scaling gates: clean-stream (no-fault) throughput at 4 workers must be
  # >= 1.5x the 1-worker run, and the chaos stream — poison rules, floods,
  # breaker trips, tracing on — must scale too (4w >= 1.5x in smoke mode;
  # the full bench enforces 8w >= 2x). Every request carries a 2 ms
  # lock-free stall that N workers overlap, which is the only axis that can
  # scale on this repo's single-core runners — so the floors are generous,
  # but they still fail on a serialized path: a global queue lock or
  # per-request engine rebuild flattens the clean gate, and a global
  # breaker mutex, shared trace-ring lock, or per-request rule-set rebuild
  # flattens the chaos gate.
  echo "== bench smoke (service_soak, scaling gates enforced)"
  BENCH_SMOKE=1 BENCH_ENFORCE=1 \
    cargo bench -p kola-bench --bench service_soak --offline
fi

if [ "$CHAOS_SMOKE_RUN" = 1 ]; then
  # Seed matrix: the soak's invariants are scheduling-independent, but each
  # seed shapes a different stream (which rules poison, which requests
  # flood, which deadlines bite) — five seeds cover more of that space than
  # one longer run at the same cost.
  # 12648430 is the soak's default seed (0xC0FFEE) in the decimal form the
  # binary's env parser accepts.
  for seed in 12648430 1 2 3 4; do
    echo "== chaos smoke (100-request service soak, seed ${seed})"
    CHAOS_REQUESTS=100 CHAOS_SEED="${seed}" \
      cargo run -p kola-service --bin chaos-soak --release --offline
  done
fi

if [ "$TENANT_SMOKE_RUN" = 1 ]; then
  echo "== tenant smoke (two-tenant noisy-neighbor soak)"
  TENANT_REQUESTS=1000 \
    cargo run -p kola-service --bin tenant-smoke --release --offline
fi

if [ "$CACHE_SMOKE_RUN" = 1 ]; then
  echo "== cache smoke (repeated soak + parity with trips/resets)"
  CACHE_SMOKE_REQUESTS=1200 \
    cargo run -p kola-service --bin cache-smoke --release --offline
fi

if [ "$OBS_SMOKE_RUN" = 1 ]; then
  # Traced soak: the binary records every successful optimization, replays
  # each trace on the boxed reference engine, checks the conservation
  # invariants on the quiescent metric snapshot, and exits nonzero on any
  # violation. The grep re-checks the emitted artifact so a silently
  # stale/unwritten BENCH_obs.json also fails the gate.
  echo "== obs smoke (600-request traced soak + conservation check)"
  CHAOS_REQUESTS=600 CHAOS_TRACE=1 \
    cargo run -p kola-service --bin chaos-soak --release --offline
  grep -q '"ok": true' BENCH_obs.json \
    || { echo "BENCH_obs.json missing balanced-books verdict" >&2; exit 1; }
  grep -q '"divergent": 0' BENCH_obs.json \
    || { echo "BENCH_obs.json reports divergent trace replays" >&2; exit 1; }
  # Ring-loss bound: with per-worker trace shards the fleet must retain
  # provenance under load — more than 5% of recorded traces evicted before
  # the audit means the rings are undersized for the workload (or a shard
  # regression re-funneled every worker into one ring).
  awk -F'"dropped_pct": ' '/"dropped_pct"/ {
      split($2, a, ","); pct = a[1] + 0
      if (pct >= 5) { printf "trace ring loss %.2f%% >= 5%%\n", pct; exit 1 }
      found = 1
    }
    END { if (!found) { print "BENCH_obs.json missing dropped_pct"; exit 1 } }' \
    BENCH_obs.json \
    || { echo "BENCH_obs.json trace-loss bound violated" >&2; exit 1; }

  # Zero-cost-when-disabled: the clean stream runs with tracing off (the
  # default config); its 4-worker >= 1.5x 1-worker scaling gate fails if
  # the disabled observability layer leaks work onto the hot path.
  echo "== obs smoke (scaling gate with tracing disabled)"
  BENCH_SMOKE=1 BENCH_ENFORCE=1 \
    cargo bench -p kola-bench --bench service_soak --offline
fi

echo "CI gate passed."
