#!/usr/bin/env bash
# Offline CI gate: formatting, lints, release build, full test suite.
# No network access is assumed anywhere (--offline); the workspace has no
# external crate dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo build --release"
cargo build --workspace --release --offline

echo "== cargo test"
cargo test --workspace --offline -q

echo "CI gate passed."
