//! `kolaq` — a command-line driver for the KOLA optimizer pipeline.
//!
//! ```text
//! kolaq explain   '<kola query>'          render the operator tree
//! kolaq optimize  '<kola query>'          run the COKO Simplify block
//! kolaq untangle  '<kola query>'          run the §4.1 hidden-join pipeline
//!
//! `optimize` and `untangle` accept `--saturate`: run the same strategy on
//! the equality-saturation engine (non-destructive rule application to a
//! fixpoint, then cost-based extraction) instead of the destructive
//! fixpoint engine.
//! kolaq run       '<kola query>'          execute on a generated database
//! kolaq oql       '<oql query>'           OQL -> AQUA -> KOLA (then optimize+run)
//! kolaq aqua      '<aqua expr>'           AQUA -> KOLA translation
//! kolaq cost      '<kola query>'          estimate cardinality and cost
//! kolaq verify    [rule-id]               verify one rule or the whole catalog
//! kolaq rules                             list the catalog
//! ```
//!
//! Queries use the concrete syntax of `kola::parse` (see README); the
//! database is the deterministic generated world over the paper's schema
//! with extents `P` and `V` (plus `A`/`B` aliased to `P` for synthetic
//! forms).

use kola::explain::explain_query;
use kola_coko::stdlib::{simplify_strategy, untangle_strategy};
use kola_exec::datagen::{generate, DataSpec};
use kola_exec::{Executor, Mode};
use kola_rewrite::engine::Trace;
use kola_rewrite::strategy::Runner;
use kola_rewrite::{Catalog, EngineConfig, PropDb, RewriteReport};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("kolaq: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn db() -> kola::Db {
    let mut db = generate(&DataSpec::default());
    let p = db.extent("P").expect("generator binds P");
    db.bind_extent("A", p.clone());
    db.bind_extent("B", p);
    db
}

fn parse(src: &str) -> Result<kola::Query, String> {
    kola::parse::parse_query(src).map_err(|e| e.to_string())
}

fn optimize_with(
    strategy: &kola_rewrite::Strategy,
    q: kola::Query,
    saturate: bool,
) -> (kola::Query, Trace, RewriteReport) {
    let catalog = Catalog::paper();
    let props = PropDb::new();
    let mut runner = Runner::new(&catalog, &props);
    if saturate {
        runner = runner.with_engine(EngineConfig::saturating());
    }
    let mut trace = Trace::new();
    let (out, _, report) = runner.run_governed(strategy, q, &mut trace);
    (out, trace, report)
}

fn run(args: &[String]) -> Result<(), String> {
    let usage = "usage: kolaq <explain|optimize|untangle|run|oql|aqua|cost|verify|rules> [arg]";
    let cmd = args.first().ok_or(usage)?;
    match cmd.as_str() {
        "explain" => {
            let q = parse(arg(args)?)?;
            print!("{}", explain_query(&q));
            Ok(())
        }
        "optimize" => {
            let (src, saturate) = query_and_flags(args)?;
            let q = parse(src)?;
            let strategy = simplify_strategy().map_err(|e| e.to_string())?;
            let (out, trace, report) = optimize_with(&strategy, q, saturate);
            print_derivation(&trace);
            eprintln!("-- {report}");
            println!("{out}");
            Ok(())
        }
        "untangle" => {
            let (src, saturate) = query_and_flags(args)?;
            let q = parse(src)?;
            let strategy = untangle_strategy().map_err(|e| e.to_string())?;
            let (out, trace, report) = optimize_with(&strategy, q, saturate);
            print_derivation(&trace);
            eprintln!("-- {report}");
            println!("{out}");
            Ok(())
        }
        "run" => {
            let q = parse(arg(args)?)?;
            let db = db();
            let mut ex = Executor::new(&db, Mode::Smart);
            let v = ex.run(&q).map_err(|e| e.to_string())?;
            println!("{v}");
            eprintln!(
                "-- {} elements visited, {} predicate tests, {} hash ops",
                ex.stats.elements_visited, ex.stats.predicate_tests, ex.stats.hash_ops
            );
            Ok(())
        }
        "oql" => {
            let src = arg(args)?;
            let aqua = kola_frontend::parse_oql(src).map_err(|e| e.to_string())?;
            eprintln!("-- AQUA: {aqua}");
            let q = kola_frontend::translate_query(&aqua).map_err(|e| e.to_string())?;
            eprintln!("-- KOLA: {q}");
            let strategy = untangle_strategy().map_err(|e| e.to_string())?;
            let (out, trace, _) = optimize_with(&strategy, q, false);
            eprintln!(
                "-- optimized ({} rule applications): {out}",
                trace.steps.len()
            );
            let db = db();
            let mut ex = Executor::new(&db, Mode::Smart);
            let v = ex.run(&out).map_err(|e| e.to_string())?;
            println!("{v}");
            Ok(())
        }
        "aqua" => {
            let src = arg(args)?;
            let aqua = kola_aqua::parse_aqua(src).map_err(|e| e.to_string())?;
            let q = kola_frontend::translate_query(&aqua).map_err(|e| e.to_string())?;
            println!("{q}");
            Ok(())
        }
        "cost" => {
            let q = parse(arg(args)?)?;
            let db = db();
            let stats = kola_exec::cost::Stats::collect(&db);
            for mode in [Mode::Naive, Mode::Smart] {
                let est = kola_exec::cost::estimate_query(&stats, mode, &q);
                let mut ex = Executor::new(&db, mode);
                let measured = ex
                    .run(&q)
                    .map(|_| ex.stats.total().to_string())
                    .unwrap_or_else(|e| format!("error: {e}"));
                println!(
                    "{mode:?}: estimated cardinality {:.0}, estimated cost {:.0}, \
                     measured ops {measured}",
                    est.card.count(),
                    est.cost
                );
            }
            Ok(())
        }
        "verify" => {
            let env = kola::typecheck::TypeEnv::paper_env();
            let db = generate(&DataSpec::small(1));
            let catalog = Catalog::paper();
            match args.get(1) {
                Some(id) => {
                    let rule = catalog
                        .get(id)
                        .ok_or_else(|| format!("unknown rule {id}"))?;
                    println!("{rule}");
                    let report = kola_verify::check_rule(&env, &db, rule, 100, 1);
                    println!("{report}");
                    if !report.verified() {
                        return Err("rule failed verification".into());
                    }
                }
                None => {
                    let reports = kola_verify::verify_catalog(&env, &db, &catalog, 25, 1);
                    let bad: Vec<_> = reports.iter().filter(|r| !r.verified()).collect();
                    for r in &bad {
                        println!("{r}");
                    }
                    println!(
                        "{}/{} rules verified",
                        reports.len() - bad.len(),
                        reports.len()
                    );
                    if !bad.is_empty() {
                        return Err("catalog verification failed".into());
                    }
                }
            }
            Ok(())
        }
        "rules" => {
            let catalog = Catalog::paper();
            for rule in catalog.rules() {
                println!("{rule}");
            }
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{usage}")),
    }
}

fn arg(args: &[String]) -> Result<&str, String> {
    args.get(1)
        .map(|s| s.as_str())
        .ok_or_else(|| "missing query argument".to_string())
}

/// One query argument plus the optional `--saturate` flag, in either order.
fn query_and_flags(args: &[String]) -> Result<(&str, bool), String> {
    let mut saturate = false;
    let mut query = None;
    for a in &args[1..] {
        match a.as_str() {
            "--saturate" => saturate = true,
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other:?}"));
            }
            other => {
                if query.replace(other).is_some() {
                    return Err("expected exactly one query argument".into());
                }
            }
        }
    }
    let query = query.ok_or_else(|| "missing query argument".to_string())?;
    Ok((query, saturate))
}

fn print_derivation(trace: &Trace) {
    for step in &trace.steps {
        eprintln!("-- [{}] {}", step.justification(), step.after);
    }
}
