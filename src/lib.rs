#![warn(missing_docs)]
//! Umbrella crate re-exporting the KOLA reproduction workspace.
//!
//! See `README.md` for the project overview and `DESIGN.md` for the
//! system inventory. The interesting crates:
//!
//! - [`kola`] — the combinator algebra itself (terms, semantics, types).
//! - [`kola_rewrite`] — patterns, rules, strategies, the hidden-join untangler.
//! - [`kola_aqua`] — the variable-based baseline algebra.
//! - [`kola_frontend`] — OQL parser and AQUA→KOLA translator.
//! - [`kola_coko`] — the COKO rule-block language.
//! - [`kola_verify`] — randomized rule verification.
//! - [`kola_exec`] — op-counting execution engine and data generators.
pub use kola;
pub use kola_aqua;
pub use kola_coko;
pub use kola_exec;
pub use kola_frontend;
pub use kola_rewrite;
pub use kola_verify;
