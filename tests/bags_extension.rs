//! The §6 bulk-type extension: bags, and the paper's motivating
//! optimization — "optimizations that defer duplicate elimination can be
//! expressed as transformations that produce bags as intermediate results".

use kola::parse::{parse_func, parse_query};
use kola_exec::datagen::{generate, DataSpec};
use kola_rewrite::engine::{rewrite_once_query, Oriented};
use kola_rewrite::{Catalog, PropDb};

fn db() -> kola::Db {
    let mut db = generate(&DataSpec::small(55));
    let people: Vec<kola::Value> = db
        .extent("P")
        .unwrap()
        .as_set()
        .unwrap()
        .iter()
        .cloned()
        .collect();
    db.bind_extent("A", kola::Value::set(people[..15].to_vec()));
    db.bind_extent("B", kola::Value::set(people[5..].to_vec()));
    db
}

#[test]
fn bag_combinator_semantics() {
    let db = db();
    // bagify then dedup round-trips.
    let q = parse_query("dedup ! bagify ! P").unwrap();
    assert_eq!(kola::eval_query(&db, &q).unwrap(), db.extent("P").unwrap());
    // biterate preserves multiplicity: ages of A ⊎ ages of B counts
    // duplicates from both sides.
    let q = parse_query(
        "bunion ! [biterate(Kp(T), age) ! bagify ! A, \
                   biterate(Kp(T), age) ! bagify ! B]",
    )
    .unwrap();
    let v = kola::eval_query(&db, &q).unwrap();
    let kola::Value::Bag(bag) = &v else {
        panic!("expected a bag, got {v}")
    };
    // Total multiplicity = |A| + |B| (age maps each person to one value).
    assert_eq!(bag.len(), 15 + 15);
    // And the support is the set of distinct ages.
    assert!(bag.distinct() <= bag.len());
}

#[test]
fn dedup_deferral_rule_b7_is_semantics_preserving() {
    let db = db();
    let catalog = Catalog::paper();
    let props = PropDb::new();
    let rule = catalog.get("b7").unwrap();
    let q = parse_query("iterate(gt @ (age, Kf(25)), age) ! (A union B)").unwrap();
    let rules = [Oriented::fwd(rule)];
    let applied = rewrite_once_query(&rules, &q, &props).expect("b7 fires");
    let s = applied.result.to_string();
    assert!(s.starts_with("dedup !"), "{s}");
    assert!(s.contains("biterate("), "{s}");
    assert_eq!(
        kola::eval_query(&db, &q).unwrap(),
        kola::eval_query(&db, &applied.result).unwrap(),
        "deferral preserves the set result"
    );
}

#[test]
fn deferral_pays_off_in_dedup_work() {
    // The point of deferring: one duplicate elimination at the end instead
    // of the set-machinery running on every intermediate. Compare the
    // number of distinct-element merges implied: with sets, the union must
    // dedup |A|+|B| elements *and* iterate dedups again; with bags, only
    // the final dedup pays.
    let db = db();
    let eager = parse_query("iterate(Kp(T), age) ! (A union B)").unwrap();
    let deferred = parse_query(
        "dedup ! bunion ! \
         [biterate(Kp(T), age) ! bagify ! A, biterate(Kp(T), age) ! bagify ! B]",
    )
    .unwrap();
    let a = kola::eval_query(&db, &eager).unwrap();
    let b = kola::eval_query(&db, &deferred).unwrap();
    assert_eq!(a, b);
    // The deferred plan's intermediate bag really carries multiplicities
    // (i.e. the intermediate result is NOT already deduplicated).
    let intermediate = parse_query(
        "bunion ! [biterate(Kp(T), age) ! bagify ! A, \
                   biterate(Kp(T), age) ! bagify ! B]",
    )
    .unwrap();
    let kola::Value::Bag(bag) = kola::eval_query(&db, &intermediate).unwrap() else {
        panic!("expected bag");
    };
    assert!(
        bag.len() > bag.distinct(),
        "duplicates must exist to be worth deferring ({} vs {})",
        bag.len(),
        bag.distinct()
    );
}

#[test]
fn bag_rules_verified_and_typed() {
    let env = kola::typecheck::TypeEnv::paper_env();
    let vdb = generate(&DataSpec::small(66));
    let catalog = Catalog::paper();
    for id in ["b1", "b2", "b3", "b4", "b5", "b6", "b7", "b8"] {
        let rule = catalog.get(id).unwrap_or_else(|| panic!("missing {id}"));
        let report = kola_verify::check_rule(&env, &vdb, rule, 40, 77);
        assert!(report.verified(), "{report}");
    }
}

#[test]
fn bag_types_infer() {
    let env = kola::typecheck::TypeEnv::paper_env();
    let f = parse_func("dedup . biterate(Kp(T), age) . bagify").unwrap();
    let t = kola::typecheck::typecheck_func(&env, &f).unwrap();
    assert_eq!(t.to_string(), "{obj0} -> {int}");
    let f = parse_func("bflat").unwrap();
    let t = kola::typecheck::typecheck_func(&env, &f).unwrap();
    assert!(t.to_string().contains("{|"), "{t}");
}

#[test]
fn bag_syntax_round_trips() {
    for src in [
        "dedup . bagify",
        "biterate(gt @ (age, Kf(25)), age)",
        "bunion . (bagify * bagify)",
        "dedup . bflat . bagify . iterate(Kp(T), bagify)",
    ] {
        let f = parse_func(src).unwrap();
        assert_eq!(parse_func(&f.to_string()).unwrap(), f, "{src}");
    }
}

#[test]
fn bag_fusion_b6_mirrors_rule_11() {
    let db = db();
    let q =
        parse_query("dedup . biterate(Kp(T), city) . biterate(Kp(T), addr) . bagify ! P").unwrap();
    let catalog = Catalog::paper();
    let props = PropDb::new();
    let rule = catalog.get("b6").unwrap();
    let rules = [Oriented::fwd(rule)];
    let applied = rewrite_once_query(&rules, &q.normalize(), &props).expect("b6 fires");
    assert_eq!(
        kola::eval_query(&db, &q).unwrap(),
        kola::eval_query(&db, &applied.result).unwrap()
    );
}
