//! Integration tests for the resource-governance layer: budgets, cycle
//! detection, depth clipping, best-so-far degradation, and fault
//! quarantine, end to end through the public `kola-rewrite` API.

use kola::term::{Func, Query};
use kola_rewrite::budget::measure_query;
use kola_rewrite::strategy::{apply, repeat};
use kola_rewrite::{
    rewrite_fix_governed, rewrite_fix_with, Budget, Catalog, FaultKind, FaultPlan, FaultSpec,
    Oriented, PropDb, Rule, Runner, StepSelector, StopReason,
};
use std::sync::Arc;

/// `id ∘ id ∘ … ∘ id ∘ age ! P` with `n` identity layers. Built (and
/// later torn down by normal drop) iteratively-shallow enough for test
/// stacks at the sizes used here.
fn id_tower(n: usize) -> Query {
    let mut f = Func::Prim(Arc::from("age"));
    for _ in 0..n {
        f = Func::Compose(Box::new(Func::Id), Box::new(f));
    }
    Query::App(f, Box::new(Query::Extent(Arc::from("P"))))
}

#[test]
fn budget_exhaustion_returns_best_so_far_with_accurate_report() {
    let catalog = Catalog::paper();
    let props = PropDb::new();
    let rules = vec![Oriented::fwd(catalog.get("2").unwrap())];
    let q = id_tower(1_000);
    let (initial_size, _) = measure_query(&q.normalize());

    let budget = Budget::with_steps(10);
    let r = rewrite_fix_governed(&rules, &q, &props, &budget);

    assert_eq!(r.report.stop, StopReason::BudgetExhausted);
    assert_eq!(r.report.steps, 10, "{}", r.report);
    assert_eq!(r.trace.steps.len(), r.report.steps);
    assert_eq!(r.report.rule_stats["2"].fired, 10);
    // Each firing of rule 2 strips one `id ∘` layer (two nodes); the best
    // term under an exhausted budget is the furthest point reached.
    let (final_size, _) = measure_query(&r.query);
    assert_eq!(final_size, initial_size - 20);
}

#[test]
fn forward_backward_rule_pair_terminates_via_cycle_detection() {
    // A rule applied in both orientations ping-pongs forever; the
    // fingerprint seen-set must catch the revisit, not burn the budget.
    let flip = Rule::func("flip", "test", "id . $f", "$f . id");
    let rules = vec![Oriented::fwd(&flip), Oriented::bwd(&flip)];
    let props = PropDb::new();
    let q = kola::parse::parse_query("id . age ! P").unwrap();

    let r = rewrite_fix_governed(&rules, &q, &props, &Budget::default());
    assert_eq!(r.report.stop, StopReason::CycleDetected, "{}", r.report);
    assert!(
        r.report.steps <= 4,
        "cycle must be caught immediately, not after {} steps",
        r.report.steps
    );
    assert_eq!(r.trace.steps.len(), r.report.steps);
}

#[test]
fn ten_thousand_node_term_rewrites_without_overflow() {
    let catalog = Catalog::paper();
    let props = PropDb::new();
    let rules = vec![Oriented::fwd(catalog.get("2").unwrap())];
    // ~20k nodes: 10k id layers, each contributing a Compose and an Id.
    let q = id_tower(10_000);
    let (initial_size, _) = measure_query(&q);
    assert!(initial_size > 20_000);

    let budget = Budget::with_steps(50);
    let r = rewrite_fix_governed(&rules, &q, &props, &budget);
    assert_eq!(r.report.stop, StopReason::BudgetExhausted);
    assert_eq!(r.report.steps, 50);
    let (final_size, _) = measure_query(&r.query);
    assert_eq!(final_size, measure_query(&q.normalize()).0 - 100);
}

#[test]
fn descent_depth_is_clipped_not_overflowed() {
    // Rule 9 (`pi1 . ($f, $g)`) matches nowhere in an id tower, so the
    // engine must walk (and give up on) the whole term: the walk is
    // clipped at the budget's depth bound.
    let catalog = Catalog::paper();
    let props = PropDb::new();
    let rules = vec![Oriented::fwd(catalog.get("9").unwrap())];
    let q = id_tower(10_000);

    let budget = Budget::default().depth(64);
    let r = rewrite_fix_governed(&rules, &q, &props, &budget);
    assert_eq!(r.report.stop, StopReason::NormalForm);
    assert_eq!(r.report.steps, 0);
    assert!(r.report.depth_clipped, "{}", r.report);
}

#[test]
fn faulted_rule_is_quarantined_then_run_degrades_gracefully() {
    let catalog = Catalog::paper();
    let props = PropDb::new();
    // Rule 2 is the only rule that can fire on an id tower (rule 9 never
    // matches it); sabotaging rule 2 leaves the engine nothing to do.
    let rules = vec![
        Oriented::fwd(catalog.get("2").unwrap()),
        Oriented::fwd(catalog.get("9").unwrap()),
    ];
    let q = id_tower(8);
    let faults = FaultPlan::new().with(FaultSpec {
        rule_id: "2".to_string(),
        at: StepSelector::Always,
        kind: FaultKind::Fail,
    });
    let budget = Budget::default().quarantine_after(3);
    let r = rewrite_fix_with(&rules, &q, &props, &budget, &faults);

    assert!(r.report.is_quarantined("2"), "{}", r.report);
    assert_eq!(r.report.rule_stats["2"].fired, 0);
    assert!(r.report.rule_stats["2"].failed >= 3);
    // With its only productive rule quarantined the term is in normal form;
    // the run ends cleanly instead of erroring out.
    assert_eq!(r.report.stop, StopReason::NormalForm);
    assert_eq!(r.report.steps, 0);
    assert_eq!(r.query, q.normalize());
}

#[test]
fn strategy_runner_respects_budget_and_reports() {
    let catalog = Catalog::paper();
    let props = PropDb::new();
    let runner = Runner::new(&catalog, &props).with_budget(Budget::with_steps(5));
    let q = id_tower(20);
    let mut trace = kola_rewrite::Trace::new();
    let (_, _, report) = runner.run_governed(&repeat(apply("2")), q, &mut trace);

    assert_eq!(report.steps, 5, "{report}");
    assert_eq!(trace.steps.len(), 5);
    assert_eq!(report.stop, StopReason::BudgetExhausted);
    assert_eq!(report.rule_stats["2"].fired, 5);
}

#[test]
fn unknown_rule_reference_degrades_instead_of_panicking() {
    let catalog = Catalog::paper();
    let props = PropDb::new();
    let runner = Runner::new(&catalog, &props);
    let q = kola::parse::parse_query("id . age ! P").unwrap();
    let mut trace = kola_rewrite::Trace::new();
    let (out, outcome, report) = runner.run_governed(&apply("no-such-rule"), q.clone(), &mut trace);
    assert_eq!(outcome, kola_rewrite::strategy::Outcome::Failure);
    assert_eq!(out, q.normalize());
    assert_eq!(report.failures.len(), 1, "{report}");
    assert!(report.failures[0].contains("no-such-rule"));
}

#[test]
fn deadline_budget_stops_the_run() {
    let catalog = Catalog::paper();
    let props = PropDb::new();
    let rules = vec![Oriented::fwd(catalog.get("2").unwrap())];
    let q = id_tower(200);
    // A deadline already in the past: the run must stop before any step.
    let budget = Budget::default().timeout(std::time::Duration::from_secs(0));
    let r = rewrite_fix_governed(&rules, &q, &props, &budget);
    assert_eq!(r.report.stop, StopReason::DeadlineExpired);
    assert_eq!(r.report.steps, 0);
}
