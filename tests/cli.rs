//! Smoke tests for the `kolaq` command-line driver.

use std::process::Command;

fn kolaq(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_kolaq"))
        .args(args)
        .output()
        .expect("kolaq binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn explain_renders_a_tree() {
    let (ok, stdout, _) = kolaq(&["explain", "iterate(gt @ (age, Kf(25)), age) ! P"]);
    assert!(ok);
    assert!(stdout.contains("! apply"), "{stdout}");
    assert!(stdout.contains("where:"), "{stdout}");
}

#[test]
fn optimize_simplifies() {
    let (ok, stdout, stderr) = kolaq(&[
        "optimize",
        "iterate(Kp(T), city) . iterate(Kp(T), addr) ! P",
    ]);
    assert!(ok, "{stderr}");
    assert_eq!(stdout.trim(), "iterate(Kp(T), city . addr) ! P");
    assert!(stderr.contains("[11]"), "derivation on stderr: {stderr}");
}

#[test]
fn untangle_produces_kg2() {
    let (ok, stdout, _) = kolaq(&[
        "untangle",
        "iterate(Kp(T), (id, flat . iter(Kp(T), grgs . pi2) . \
         (id, iter(in @ (pi1, cars . pi2), pi2) . (id, Kf(P))))) ! V",
    ]);
    assert!(ok);
    assert_eq!(
        stdout.trim(),
        "nest(pi1, pi2) . unnest(pi1, pi2) * id . \
         (join(in @ id * cars, id * grgs), pi1) ! [V, P]"
    );
}

#[test]
fn optimize_saturate_reaches_the_same_normal_form() {
    // A monotone-downhill query: every strategy stage only shrinks it, so
    // per-stage TermSize extraction agrees with the fixpoint engine. (On
    // strategies that go uphill before coming down — e.g. iterate-fusion's
    // `&`-introducing stage — extraction may keep the smaller input
    // instead; the OpWeight-costed Figure 3 run in tests/egraph_fig3.rs
    // covers that side.) The report counts wave + saturation steps.
    let (ok, stdout, stderr) = kolaq(&["optimize", "--saturate", "id . id . id . age ! P"]);
    assert!(ok, "{stderr}");
    assert_eq!(stdout.trim(), "age ! P");
    assert!(stderr.contains("stopped:"), "{stderr}");
}

#[test]
fn saturate_flag_rejects_unknown_flags_and_extra_args() {
    let (ok, _, stderr) = kolaq(&["optimize", "--frobnicate", "age ! P"]);
    assert!(!ok);
    assert!(stderr.contains("unknown flag"), "{stderr}");
    let (ok, _, stderr) = kolaq(&["optimize", "age ! P", "city ! P"]);
    assert!(!ok);
    assert!(stderr.contains("exactly one query"), "{stderr}");
}

#[test]
fn run_executes_and_reports_stats() {
    let (ok, stdout, stderr) = kolaq(&["run", "iterate(gt @ (age, Kf(80)), age) ! P"]);
    assert!(ok, "{stderr}");
    assert!(stdout.trim().starts_with('{'), "{stdout}");
    assert!(stderr.contains("elements visited"), "{stderr}");
}

#[test]
fn oql_pipeline_end_to_end() {
    let (ok, stdout, stderr) = kolaq(&["oql", "select p.age from p in P where p.age > 80"]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("-- AQUA:"), "{stderr}");
    assert!(stderr.contains("-- KOLA:"), "{stderr}");
    assert!(stdout.trim().starts_with('{'), "{stdout}");
}

#[test]
fn aqua_translation() {
    let (ok, stdout, _) = kolaq(&["aqua", "app(\\p. p.addr.city)(P)"]);
    assert!(ok);
    assert_eq!(stdout.trim(), "iterate(Kp(T), city . addr) ! P");
}

#[test]
fn verify_single_rule() {
    let (ok, stdout, _) = kolaq(&["verify", "11"]);
    assert!(ok);
    assert!(stdout.contains("passed"), "{stdout}");
}

#[test]
fn rules_lists_catalog() {
    let (ok, stdout, _) = kolaq(&["rules"]);
    assert!(ok);
    assert!(stdout.lines().count() >= 140, "{}", stdout.lines().count());
    assert!(stdout.contains("[11] iterate-fusion"), "{stdout}");
}

#[test]
fn cost_estimates_both_modes() {
    let (ok, stdout, stderr) = kolaq(&[
        "cost",
        "nest(pi1, pi2) . (join(in @ id * cars, id * grgs), pi1) ! [V, P]",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("Naive:"), "{stdout}");
    assert!(stdout.contains("Smart:"), "{stdout}");
    assert!(stdout.contains("measured ops"), "{stdout}");
}

#[test]
fn bad_input_fails_cleanly() {
    let (ok, _, stderr) = kolaq(&["explain", "this is (((not a query"]);
    assert!(!ok);
    assert!(stderr.contains("kolaq:"), "{stderr}");
    let (ok, _, _) = kolaq(&["frobnicate"]);
    assert!(!ok);
    let (ok, _, stderr) = kolaq(&["verify", "no-such-rule"]);
    assert!(!ok);
    assert!(stderr.contains("unknown rule"), "{stderr}");
}
