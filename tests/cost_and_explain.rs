//! Integration of the cost model and the explain renderer with the rest of
//! the pipeline: estimates rank real plan pairs correctly, and every
//! pipeline artifact renders as a well-formed tree.

use kola::explain::explain_query;
use kola::parse::parse_query;
use kola_exec::cost::{choose, estimate_query, Stats};
use kola_exec::datagen::{generate, DataSpec};
use kola_exec::{Executor, Mode};
use kola_rewrite::hidden_join::{synthetic_hidden_join, untangle};
use kola_rewrite::{Catalog, PropDb};

#[test]
fn estimator_agrees_with_measurement_on_untangling_decisions() {
    // The garage pair has a hashable join: untangling wins, and the
    // estimator must say so. The synthetic family's absorbed join keeps a
    // Kp(T) (cross-product) core, so untangling it is *not* a clear win —
    // there the test only demands the estimator ranks the pair the same
    // way the measurements do.
    let catalog = Catalog::paper();
    let props = PropDb::new();
    let mut db = generate(&DataSpec::scaled(8, 1));
    let p = db.extent("P").unwrap();
    db.bind_extent("A", p.clone());
    db.bind_extent("B", p);
    let stats = Stats::collect(&db);

    // Garage: estimator must pick the untangled form.
    let kg1 = kola_rewrite::hidden_join::garage_query_kg1();
    let kg2 = kola_rewrite::hidden_join::garage_query_kg2();
    let (winner, _) = choose(&stats, Mode::Smart, &[&kg1, &kg2]);
    assert_eq!(winner, 1);

    // Synthetic family: ranking agreement with measurement.
    for n in 1..=2 {
        let before = synthetic_hidden_join(n);
        let after = untangle(&catalog, &props, &before).query;
        let est_before = estimate_query(&stats, Mode::Smart, &before).cost;
        let est_after = estimate_query(&stats, Mode::Smart, &after).cost;
        let measure = |q| {
            let mut ex = Executor::new(&db, Mode::Smart);
            ex.run(q).unwrap();
            ex.stats.total() as f64
        };
        let (m_before, m_after) = (measure(&before), measure(&after));
        let gap = m_before.max(m_after) / m_before.min(m_after);
        if gap >= 1.5 {
            assert_eq!(
                est_before < est_after,
                m_before < m_after,
                "depth {n}: est ({est_before:.0} vs {est_after:.0}), \
                 measured ({m_before:.0} vs {m_after:.0})"
            );
        }
    }
}

#[test]
fn estimates_track_measured_growth() {
    // As the database scales, estimated and measured costs must grow
    // together (monotone correlation) for the garage query.
    let kg1 = kola_rewrite::hidden_join::garage_query_kg1();
    let mut prev_est = 0.0;
    let mut prev_measured = 0;
    for factor in [2usize, 4, 8] {
        let db = generate(&DataSpec::scaled(factor, 5));
        let stats = Stats::collect(&db);
        let est = estimate_query(&stats, Mode::Naive, &kg1).cost;
        let mut ex = Executor::new(&db, Mode::Naive);
        ex.run(&kg1).unwrap();
        let measured = ex.stats.total();
        assert!(est > prev_est, "estimate grows with scale");
        assert!(measured > prev_measured, "measurement grows with scale");
        prev_est = est;
        prev_measured = measured;
    }
}

#[test]
fn explain_renders_every_pipeline_artifact() {
    let catalog = Catalog::paper();
    let props = PropDb::new();
    // Every snapshot of the garage derivation renders without panicking
    // and with balanced tree connectors.
    let out = untangle(
        &catalog,
        &props,
        &kola_rewrite::hidden_join::garage_query_kg1(),
    );
    for (name, q) in &out.snapshots {
        let tree = explain_query(q);
        assert!(!tree.is_empty(), "{name}");
        for line in tree.lines() {
            assert!(
                line.chars().count() < 200,
                "{name}: over-wide line {line:?}"
            );
        }
    }
}

#[test]
fn explain_distinguishes_all_operator_kinds() {
    let q = parse_query(
        "nest(pi1, pi2) . unnest(pi1, pi2) * id . \
         (join(in @ id * cars, id * grgs), pi1) ! \
         [iterate(gt @ (age, Kf(25)), id) ! P union V, P]",
    )
    .unwrap();
    let tree = explain_query(&q);
    for marker in [
        "! apply",
        "pipeline (∘)",
        "nest (group)",
        "unnest",
        "× product",
        "⟨,⟩ pairing",
        "join",
        "iterate",
        "union",
        "extent P",
        "Kf (constant)",
    ] {
        assert!(tree.contains(marker), "missing {marker} in:\n{tree}");
    }
}

#[test]
fn stats_collection_scales_with_data() {
    let small = Stats::collect(&generate(&DataSpec::scaled(2, 3)));
    let large = Stats::collect(&generate(&DataSpec::scaled(10, 3)));
    assert!(large.extent_card.get("P").unwrap() > small.extent_card.get("P").unwrap());
    // Average fanouts stay in the configured range regardless of scale.
    for stats in [&small, &large] {
        let cars = stats.avg_set_attr.get("cars").copied().unwrap();
        assert!((0.0..=2.0).contains(&cars), "{cars}");
    }
}
