//! Figure 3 rediscovery: equality saturation finds the hidden-join plan
//! *without* the hand-scripted five-step strategy.
//!
//! `hidden_join::untangle` stages the derivation — break up, bottom out,
//! pull up nest, pull up unnest, absorb, tidy — precisely because the
//! destructive fixpoint engine commits to one rewrite order and a flat rule
//! pool would wander. The saturating engine gets the same rules as one
//! flat pool (no staging, no `Try` scaffolding, no `repeat` sequencing of
//! the `app`/`app-1` plumbing — both orientations of the bidirectional
//! `app` just sit in the pool) and must reach a plan of the same cost as
//! the scripted KG2 under the operator-weight model.

use kola_exec::datagen::{generate, DataSpec};
use kola_rewrite::hidden_join::{garage_query_kg1, untangle};
use kola_rewrite::saturate::term_cost;
use kola_rewrite::{Budget, Catalog, Engine, EngineConfig, OpWeight, Oriented, PropDb};

/// The union of every rule the six scripted stages use, forward-oriented,
/// in catalog order of first use — one flat pool, no staging.
const POOL: [&str; 23] = [
    "17", "18", "2", "1", "3", "4", "4a", "9", "10", "5", "6", // break up
    "app", "19", // bottom out
    "20", "21", // pull up nest
    "22", "23", // pull up unnest
    "24", "e32", "e6", // absorb
    "e110", "e111", "e112", // tidy
];

fn op_cost(q: &kola::term::Query) -> u64 {
    let mut it = kola::intern::Interner::new();
    term_cost(&it.intern_query(&q.normalize()), &OpWeight)
}

#[test]
fn saturation_rediscovers_the_hidden_join_plan() {
    let catalog = Catalog::paper();
    let props = PropDb::new();
    let kg1 = garage_query_kg1();

    // The scripted baseline (literally Figure 3's KG2).
    let scripted = untangle(&catalog, &props, &kg1);
    let scripted_cost = op_cost(&scripted.query);
    let input_cost = op_cost(&kg1);
    assert!(
        scripted_cost < input_cost,
        "KG2 ({scripted_cost}) must beat KG1 ({input_cost}) under op-weight \
         or the rediscovery claim is vacuous"
    );

    // Plain saturation over the flat pool.
    let mut rules: Vec<Oriented> = POOL
        .iter()
        .map(|id| Oriented::fwd(catalog.get(id).unwrap()))
        .collect();
    // The chain-fusion direction of the bidirectional `app`: function-level
    // rules (20–24) match `∘`-chains, and only `app-1` builds those chains
    // back out of split `f!(g!x)` query forms.
    rules.push(Oriented::bwd(catalog.get("app").unwrap()));
    let mut sat = Engine::new(rules, &props, EngineConfig::saturating());
    sat.set_cost_model(Box::new(OpWeight));
    let budget = Budget::with_steps(2_000).depth(64).term_size(16_384);
    let out = sat.normalize(&kg1, &budget);
    let found_cost = op_cost(&out.query);

    assert_eq!(
        found_cost, scripted_cost,
        "saturation found cost {found_cost}, scripted pipeline {scripted_cost}\n\
         found   : {}\n\
         scripted: {}",
        out.query, scripted.query
    );

    // The rediscovered plan must also compute the garage query's answer.
    for seed in [5, 1234] {
        let db = generate(&DataSpec::small(seed));
        assert_eq!(
            kola::eval_query(&db, &out.query).unwrap(),
            kola::eval_query(&db, &kg1).unwrap(),
            "seed {seed}: rediscovered plan disagrees with KG1"
        );
    }
}
