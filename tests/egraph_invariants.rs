//! Property tests for the e-graph core and the saturation loop: the
//! union-find is idempotent, congruence holds after every rebuild,
//! saturation is deterministic, and budget exhaustion degrades to
//! best-so-far instead of panicking. Exercised over the same generator
//! family as `tests/egraph_parity.rs` so cyclic classes, chain e-nodes and
//! multi-level terms all occur.

use kola::term::{Func, Pred, Query};
use kola_exec::rng::Rng;
use kola_rewrite::saturate::term_cost;
use kola_rewrite::{
    Budget, Catalog, EGraph, Engine, EngineConfig, Oriented, PropDb, StopReason, TermSize,
};
use std::sync::Arc;

fn arb_func(rng: &mut Rng, depth: usize) -> Func {
    if depth == 0 || rng.gen_bool(0.3) {
        return match rng.gen_range(0..8u32) {
            0 => Func::Id,
            1 => Func::Pi1,
            2 => Func::Pi2,
            3 => Func::Flat,
            4 => Func::Bagify,
            5 => Func::Dedup,
            6 => Func::Prim(Arc::from("age")),
            _ => Func::ConstF(Box::new(Query::Lit(kola::Value::Int(rng.gen::<i64>())))),
        };
    }
    match rng.gen_range(0..6u32) {
        0 => Func::Compose(
            Box::new(arb_func(rng, depth - 1)),
            Box::new(arb_func(rng, depth - 1)),
        ),
        1 => Func::PairWith(
            Box::new(arb_func(rng, depth - 1)),
            Box::new(arb_func(rng, depth - 1)),
        ),
        2 => Func::Times(
            Box::new(arb_func(rng, depth - 1)),
            Box::new(arb_func(rng, depth - 1)),
        ),
        3 => Func::Iterate(Box::new(arb_pred(rng)), Box::new(arb_func(rng, depth - 1))),
        4 => Func::Iter(Box::new(arb_pred(rng)), Box::new(arb_func(rng, depth - 1))),
        _ => Func::Join(Box::new(arb_pred(rng)), Box::new(arb_func(rng, depth - 1))),
    }
}

fn arb_pred(rng: &mut Rng) -> Pred {
    match rng.gen_range(0..4u32) {
        0 => Pred::Eq,
        1 => Pred::Lt,
        2 => Pred::In,
        _ => Pred::ConstP(rng.gen::<bool>()),
    }
}

fn arb_query(rng: &mut Rng, depth: usize) -> Query {
    Query::App(
        arb_func(rng, depth),
        Box::new(Query::Extent(Arc::from("P"))),
    )
}

fn rule_pool(catalog: &Catalog) -> Vec<Oriented<'_>> {
    let fwd = [
        "1", "2", "4", "8", "9", "10", "3", "5", "6", "13", "app", "e121",
    ];
    let mut rules: Vec<Oriented> = fwd
        .iter()
        .map(|id| Oriented::fwd(catalog.get(id).unwrap()))
        .collect();
    rules.push(Oriented::bwd(catalog.get("app").unwrap()));
    rules
}

/// `find` is idempotent and stable under arbitrary unions: after any
/// sequence of `add_term`/`union`/`rebuild`, `find(find(c)) == find(c)`
/// for every id ever issued, and two unioned ids resolve to one root.
#[test]
fn find_is_idempotent_after_random_unions() {
    for seed in 0..200u64 {
        let mut rng = Rng::seed_from_u64(0xF1D0 ^ seed);
        let mut it = kola::intern::Interner::new();
        let mut eg = EGraph::new();
        let mut ids = Vec::new();
        for _ in 0..8 {
            let q = arb_query(&mut rng, 3);
            ids.push(eg.add_term(&it.intern_query(&q.normalize())));
        }
        // Random unions, including self-unions.
        for _ in 0..6 {
            let a = ids[rng.gen_range(0..ids.len() as u32) as usize];
            let b = ids[rng.gen_range(0..ids.len() as u32) as usize];
            let root = eg.union(a, b);
            assert_eq!(eg.find(a), eg.find(b), "seed {seed}: union did not merge");
            assert_eq!(eg.find(root), root, "seed {seed}: union root not canonical");
        }
        eg.rebuild();
        for &c in &ids {
            let r = eg.find(c);
            assert_eq!(eg.find(r), r, "seed {seed}: find not idempotent at {c}");
        }
    }
}

/// After every rebuild, congruence holds: no two distinct classes contain
/// the same canonicalized e-node (`check_congruence` sweeps the whole
/// graph), and every stored node is canonical.
#[test]
fn rebuild_restores_congruence() {
    for seed in 0..200u64 {
        let mut rng = Rng::seed_from_u64(0xC0DE ^ seed);
        let mut it = kola::intern::Interner::new();
        let mut eg = EGraph::new();
        let mut ids = Vec::new();
        for _ in 0..10 {
            let q = arb_query(&mut rng, 4);
            ids.push(eg.add_term(&it.intern_query(&q.normalize())));
        }
        for _ in 0..8 {
            let a = ids[rng.gen_range(0..ids.len() as u32) as usize];
            let b = ids[rng.gen_range(0..ids.len() as u32) as usize];
            eg.union(a, b);
            eg.rebuild();
            if let Err(e) = eg.check_congruence() {
                panic!("seed {seed}: congruence violated after rebuild: {e}");
            }
        }
    }
}

/// Two identical saturating runs produce bit-identical results: same
/// query, same step count, same stop reason. Saturation's match round is
/// ordered (classes ascending, candidates ascending, e-nodes in canonical
/// order), so nothing in the loop depends on hash iteration order.
#[test]
fn saturation_is_deterministic() {
    let catalog = Catalog::paper();
    let props = PropDb::new();
    let budget = Budget::with_steps(48).depth(40).term_size(4_096);
    for seed in 0..60u64 {
        let mut rng = Rng::seed_from_u64(0xDE7 ^ seed);
        let q = arb_query(&mut rng, 5);
        let runs: Vec<_> = (0..2)
            .map(|_| {
                let rules = rule_pool(&catalog);
                let mut eng = Engine::new(rules, &props, EngineConfig::saturating());
                eng.normalize(&q, &budget)
            })
            .collect();
        assert_eq!(
            runs[0].query, runs[1].query,
            "seed {seed}: saturation not deterministic"
        );
        assert_eq!(
            runs[0].report.steps, runs[1].report.steps,
            "seed {seed}: step counts diverge"
        );
        assert_eq!(
            runs[0].report.stop, runs[1].report.stop,
            "seed {seed}: stop reasons diverge"
        );
    }
}

/// Budget exhaustion mid-saturation is graceful: the engine reports
/// `BudgetExhausted` (or finishes early), never panics, and still returns
/// a plan no costlier than the input — extraction falls back on
/// best-so-far, and the input itself is always a member of the root class.
#[test]
fn budget_exhaustion_returns_best_so_far() {
    let catalog = Catalog::paper();
    let props = PropDb::new();
    let size = |q: &Query| {
        let mut it = kola::intern::Interner::new();
        term_cost(&it.intern_query(&q.normalize()), &TermSize)
    };
    for seed in 0..60u64 {
        let mut rng = Rng::seed_from_u64(0xB1D ^ seed);
        let q = arb_query(&mut rng, 5);
        for max_steps in [1, 2, 3, 5, 8] {
            let rules = rule_pool(&catalog);
            let mut eng = Engine::new(rules, &props, EngineConfig::saturating());
            let budget = Budget::with_steps(max_steps).depth(40).term_size(4_096);
            let out = eng.normalize(&q, &budget);
            assert!(
                out.report.steps <= max_steps,
                "seed {seed}/{max_steps}: {} steps overran the budget",
                out.report.steps
            );
            assert!(
                size(&out.query) <= size(&q),
                "seed {seed}/{max_steps}: truncated saturation returned a \
                 costlier plan than the input\n  in : {q}\n  out: {}",
                out.query
            );
            assert!(
                matches!(
                    out.report.stop,
                    StopReason::NormalForm
                        | StopReason::BudgetExhausted
                        | StopReason::CycleDetected
                        | StopReason::TermTooLarge
                ),
                "seed {seed}/{max_steps}: unexpected stop {:?}",
                out.report.stop
            );
        }
    }
}
