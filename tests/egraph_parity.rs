//! Differential gate for the equality-saturation engine: on a generated
//! corpus (1000 seeds by default; `EGRAPH_SEEDS` overrides — CI smoke uses
//! 50), the saturating engine's extracted plan must cost no more than the
//! destructive fixpoint engine's output under the extraction cost model
//! (term size). The guarantee is structural — the fixpoint trajectory is
//! unioned into the e-graph's root class before saturating — and this test
//! pins it end to end through `EngineConfig::saturating()`.
//!
//! A sampled subset additionally goes through the `kola-verify` semantic
//! gate: the extracted plan must compute the same answer as the input on a
//! populated database, not merely cost less.

use kola::term::{Func, Pred, Query};
use kola_exec::datagen::{generate, DataSpec};
use kola_exec::rng::Rng;
use kola_rewrite::saturate::term_cost;
use kola_rewrite::{Budget, Catalog, Engine, EngineConfig, Oriented, PropDb, TermSize};
use std::sync::Arc;

/// Same untyped-garbage generator family as `tests/index_parity.rs`.
fn arb_func(rng: &mut Rng, depth: usize) -> Func {
    if depth == 0 || rng.gen_bool(0.3) {
        return match rng.gen_range(0..13u32) {
            0 => Func::Id,
            1 => Func::Pi1,
            2 => Func::Pi2,
            3 => Func::Flat,
            4 => Func::Bagify,
            5 => Func::Dedup,
            6 => Func::BUnion,
            7 => Func::BFlat,
            8 => Func::SetUnion,
            9 => Func::SetIntersect,
            10 => Func::SetDiff,
            11 => {
                let names = ["age", "addr", "city", "name", "child", "zz"];
                Func::Prim(Arc::from(names[rng.gen_range(0..names.len())]))
            }
            _ => Func::ConstF(Box::new(Query::Lit(kola::Value::Int(rng.gen::<i64>())))),
        };
    }
    match rng.gen_range(0..9u32) {
        0 => Func::Compose(
            Box::new(arb_func(rng, depth - 1)),
            Box::new(arb_func(rng, depth - 1)),
        ),
        1 => Func::PairWith(
            Box::new(arb_func(rng, depth - 1)),
            Box::new(arb_func(rng, depth - 1)),
        ),
        2 => Func::Times(
            Box::new(arb_func(rng, depth - 1)),
            Box::new(arb_func(rng, depth - 1)),
        ),
        3 => Func::Iterate(
            Box::new(arb_pred_leaf(rng)),
            Box::new(arb_func(rng, depth - 1)),
        ),
        4 => Func::Iter(
            Box::new(arb_pred_leaf(rng)),
            Box::new(arb_func(rng, depth - 1)),
        ),
        5 => Func::Join(
            Box::new(arb_pred_leaf(rng)),
            Box::new(arb_func(rng, depth - 1)),
        ),
        6 => Func::BIterate(
            Box::new(arb_pred_leaf(rng)),
            Box::new(arb_func(rng, depth - 1)),
        ),
        7 => Func::Nest(
            Box::new(arb_func(rng, depth - 1)),
            Box::new(arb_func(rng, depth - 1)),
        ),
        _ => Func::Unnest(
            Box::new(arb_func(rng, depth - 1)),
            Box::new(arb_func(rng, depth - 1)),
        ),
    }
}

fn arb_pred_leaf(rng: &mut Rng) -> Pred {
    match rng.gen_range(0..5u32) {
        0 => Pred::Eq,
        1 => Pred::Lt,
        2 => Pred::Gt,
        3 => Pred::In,
        _ => Pred::ConstP(rng.gen::<bool>()),
    }
}

fn arb_query(rng: &mut Rng, depth: usize) -> Query {
    let f = arb_func(rng, depth);
    let base = Query::App(f, Box::new(Query::Extent(Arc::from("P"))));
    if rng.gen_bool(0.3) {
        let g = arb_func(rng, depth.saturating_sub(2));
        Query::PairQ(
            Box::new(base),
            Box::new(Query::App(g, Box::new(Query::Extent(Arc::from("Q"))))),
        )
    } else {
        base
    }
}

/// The mixed-level pool from `tests/index_parity.rs` (func, pred and query
/// rules, a backward orientation, and an inert backward one-way rule).
fn rule_pool(catalog: &Catalog) -> Vec<Oriented<'_>> {
    let fwd = [
        "1", "2", "4", "8", "9", "10", "11", "12", // func level
        "3", "5", "6", "7", "13", "14", "e41", "e42", // pred level
        "app", "e121", "e176", "e177", "e179", // query level
    ];
    let mut rules: Vec<Oriented> = fwd
        .iter()
        .map(|id| Oriented::fwd(catalog.get(id).unwrap()))
        .collect();
    rules.push(Oriented::bwd(catalog.get("14").unwrap()));
    rules.push(Oriented::bwd(catalog.get("e120").unwrap())); // one-way
    rules
}

/// Cost of a boxed query under the parity model (term size), measured the
/// same way extraction measures it: interned, normalized, node-counted.
fn size_cost(q: &Query) -> u64 {
    let mut it = kola::intern::Interner::new();
    term_cost(&it.intern_query(&q.normalize()), &TermSize)
}

fn corpus_len() -> u64 {
    std::env::var("EGRAPH_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000)
}

#[test]
fn extracted_cost_never_exceeds_fixpoint_cost() {
    let catalog = Catalog::paper();
    let props = PropDb::new();
    let rules = rule_pool(&catalog);
    // The fixpoint baseline runs the corpus's historical budget; the
    // saturating engine gets more steps (its internal wave replays the
    // same prefix, then saturation spends the rest) — the gate must hold
    // regardless of how far saturation got.
    let fix_budget = Budget::with_steps(12).depth(40).term_size(4_096);
    let sat_budget = Budget::with_steps(64).depth(40).term_size(4_096);

    let mut fix = Engine::new(rules.clone(), &props, EngineConfig::fast());
    let mut sat = Engine::new(rules.clone(), &props, EngineConfig::saturating());

    // Semantic spot-checks evaluate on a populated database; `Q` is bound
    // so the generator's two-extent queries are not vacuously stuck.
    let mut db = generate(&DataSpec::small(314));
    let v = db.extent("V").expect("datagen binds V").clone();
    db.bind_extent("Q", v);

    for seed in 0..corpus_len() {
        let mut rng = Rng::seed_from_u64(0xC0FFEE ^ seed);
        let q = arb_query(&mut rng, 5);
        let f = fix.normalize(&q, &fix_budget);
        let s = sat.normalize(&q, &sat_budget);
        let fc = size_cost(&f.query);
        let sc = size_cost(&s.query);
        assert!(
            sc <= fc,
            "seed {seed}: extracted plan costs {sc} > fixpoint {fc}\n  in : {q}\n  fix: {}\n  sat: {}",
            f.query,
            s.query,
        );
        // Every ~50th seed: the extracted plan must also *mean* the same
        // thing as the input (kola-verify's plan-level semantic gate).
        if seed % 50 == 0 {
            if let Err(e) = kola_verify::check_plan_semantics(&db, &q, &s.query) {
                panic!("seed {seed}: extracted plan changed semantics: {e}");
            }
        }
    }
}

#[test]
fn saturating_engine_reports_are_well_formed() {
    // Spot-check the report surface: steps within budget, a terminal stop
    // reason, and rule tallies consistent with steps (every fire is a step;
    // wave steps and saturation steps share one budget).
    use kola_rewrite::StopReason;
    let catalog = Catalog::paper();
    let props = PropDb::new();
    let rules = rule_pool(&catalog);
    let budget = Budget::with_steps(64).depth(40).term_size(4_096);
    let mut sat = Engine::new(rules.clone(), &props, EngineConfig::saturating());

    for seed in 0..50u64 {
        let mut rng = Rng::seed_from_u64(0x5A7u64.wrapping_mul(seed + 1));
        let q = arb_query(&mut rng, 5);
        let s = sat.normalize(&q, &budget);
        assert!(
            s.report.steps <= budget.max_steps,
            "seed {seed}: {} steps exceed budget {}",
            s.report.steps,
            budget.max_steps
        );
        let fired: usize = s.report.rule_stats.values().map(|st| st.fired).sum();
        assert_eq!(fired, s.report.steps, "seed {seed}: fires != steps");
        assert!(
            matches!(
                s.report.stop,
                StopReason::NormalForm
                    | StopReason::BudgetExhausted
                    | StopReason::DeadlineExpired
                    | StopReason::CycleDetected
                    | StopReason::TermTooLarge
            ),
            "seed {seed}: non-terminal stop {:?}",
            s.report.stop
        );
    }
}
