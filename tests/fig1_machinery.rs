//! Experiment E3 — Figure 1 over AQUA vs over KOLA: the same two
//! transformations need variable machinery in one representation and none
//! in the other. This is the paper's central §2-vs-§3 contrast, quantified.

use kola_aqua::rules::{query_t1, query_t2, t1_compose_apps, t2_decompose_sel};
use kola_aqua::Machinery;
use kola_exec::datagen::{generate, DataSpec};
use kola_frontend::translate_query;
use kola_rewrite::engine::Trace;
use kola_rewrite::strategy::{apply, fix, seq, Runner};
use kola_rewrite::{Catalog, PropDb};

#[test]
fn aqua_t1_needs_machinery_kola_t1_needs_none() {
    // AQUA side: body routine does expression composition (substitution).
    let mut m = Machinery::default();
    let aqua_out = t1_compose_apps(&query_t1(), &mut m).expect("T1 applies");
    assert!(m.total() > 0, "AQUA T1 must invoke machinery");

    // KOLA side: three pattern applications; machinery count is zero by
    // construction (there is no machinery to call).
    let catalog = Catalog::paper();
    let props = PropDb::new();
    let runner = Runner::new(&catalog, &props);
    let k = translate_query(&query_t1()).unwrap();
    let mut trace = Trace::new();
    let (kola_out, _) = runner.run(&fix(&["11", "6", "5"]), k, &mut trace);

    // Both reach equivalent results.
    let db = generate(&DataSpec::small(21));
    assert_eq!(
        kola_aqua::eval_closed(&db, &aqua_out).unwrap(),
        kola::eval_query(&db, &kola_out).unwrap()
    );
}

#[test]
fn aqua_t2_needs_renaming_and_analysis() {
    let mut m = Machinery::default();
    let aqua_out = t2_decompose_sel(&query_t2(), &mut m).expect("T2 applies");
    // §2.1's two named machineries: variable renaming (α-comparison uses
    // substitution) and free-variable analysis.
    assert!(m.substitutions > 0);
    assert!(m.free_var_analyses > 0);

    let catalog = Catalog::paper();
    let props = PropDb::new();
    let runner = Runner::new(&catalog, &props);
    let k = translate_query(&query_t2()).unwrap();
    let mut trace = Trace::new();
    let (kola_out, _) = runner.run(
        &seq(vec![
            apply("11"),
            fix(&["3", "e32", "1"]),
            apply("13"),
            apply("7"),
            apply("12-1"),
        ]),
        k,
        &mut trace,
    );
    let db = generate(&DataSpec::small(22));
    assert_eq!(
        kola_aqua::eval_closed(&db, &aqua_out).unwrap(),
        kola::eval_query(&db, &kola_out).unwrap()
    );
}

#[test]
fn rules_are_data_no_code_slots_exist() {
    // The structural claim: a KOLA Rule consists of patterns and
    // declarative preconditions only. Enumerate the catalog and confirm
    // nothing else is attached.
    let catalog = Catalog::paper();
    for rule in catalog.rules() {
        assert!(!rule.alts.is_empty());
        // `Precondition` has exactly {prop, subject}: both data.
        for pre in &rule.preconditions {
            match &pre.subject {
                kola_rewrite::PropTerm::FuncVar(name) => assert!(!name.is_empty()),
            }
        }
    }
}

#[test]
fn figure_1_documented_meanings() {
    // T1: "Return the cities inhabited by people in P."
    let db = generate(&DataSpec::small(23));
    let out = kola::eval_query(
        &db,
        &kola::parse::parse_query("iterate(Kp(T), city . addr) ! P").unwrap(),
    )
    .unwrap();
    let mut expect = kola::ValueSet::new();
    for p in db.extent("P").unwrap().as_set().unwrap().iter() {
        let addr = db.get_attr(p, "addr").unwrap();
        expect.insert(db.get_attr(&addr, "city").unwrap());
    }
    assert_eq!(out, kola::Value::Set(expect));
}
