//! Experiment E8 — Figure 3: the "Garage Query" KG1 untangles to KG2, the
//! two agree on data, and the untangled form is cheaper to execute with
//! hash operators (the §4.1 motivation).

use kola_exec::datagen::{generate, DataSpec};
use kola_exec::{Executor, Mode};
use kola_rewrite::hidden_join::{garage_query_kg1, garage_query_kg2, untangle};
use kola_rewrite::{Catalog, PropDb};

#[test]
fn kg1_untangles_to_exactly_kg2() {
    let catalog = Catalog::paper();
    let props = PropDb::new();
    let out = untangle(&catalog, &props, &garage_query_kg1());
    assert_eq!(out.query, garage_query_kg2(), "\ntrace:\n{}", out.trace);
    // §4.2 claims 24 rules replace four transformations; the garage
    // derivation itself is a few dozen small steps.
    assert!(
        out.trace.steps.len() >= 10,
        "expected a gradual multi-step derivation, got {}",
        out.trace.steps.len()
    );
}

#[test]
fn kg1_kg2_agree_on_many_databases() {
    for seed in 0..8 {
        let db = generate(&DataSpec::small(seed));
        let v1 = kola::eval_query(&db, &garage_query_kg1()).unwrap();
        let v2 = kola::eval_query(&db, &garage_query_kg2()).unwrap();
        assert_eq!(v1, v2, "seed {seed}");
    }
}

#[test]
fn every_derivation_step_preserves_semantics() {
    let catalog = Catalog::paper();
    let props = PropDb::new();
    let out = untangle(&catalog, &props, &garage_query_kg1());
    let db = generate(&DataSpec::small(1234));
    let reference = kola::eval_query(&db, &garage_query_kg1()).unwrap();
    for step in &out.trace.steps {
        assert_eq!(
            kola::eval_query(&db, &step.after).unwrap(),
            reference,
            "step [{}] broke the query:\n{}",
            step.justification(),
            step.after
        );
    }
}

#[test]
fn garage_result_means_what_the_paper_says() {
    // "associates each of a set of Vehicles with the set of Addresses where
    // the Vehicle might be located": for each v, the garages of its owners.
    let db = generate(&DataSpec::small(5));
    let got = kola::eval_query(&db, &garage_query_kg2()).unwrap();
    let vehicles = db.extent("V").unwrap();
    let people = db.extent("P").unwrap();
    for entry in got.as_set().unwrap().iter() {
        let (v, addrs) = entry.as_pair().unwrap();
        assert!(vehicles.as_set().unwrap().contains(v));
        // Manually recompute the group.
        let mut expect = kola::ValueSet::new();
        for p in people.as_set().unwrap().iter() {
            let cars = db.get_attr(p, "cars").unwrap();
            if cars.as_set().unwrap().contains(v) {
                for g in db.get_attr(p, "grgs").unwrap().as_set().unwrap().iter() {
                    expect.insert(g.clone());
                }
            }
        }
        assert_eq!(addrs, &kola::Value::Set(expect), "vehicle {v}");
    }
    // NULL-avoidance: every vehicle appears, garage-less ones with ∅.
    assert_eq!(
        got.as_set().unwrap().len(),
        vehicles.as_set().unwrap().len()
    );
}

#[test]
fn untangling_unlocks_hash_execution() {
    let db = generate(&DataSpec::scaled(8, 2));
    let kg1 = garage_query_kg1();
    let kg2 = garage_query_kg2();
    let cost = |q, mode| {
        let mut ex = Executor::new(&db, mode);
        ex.run(q).unwrap();
        ex.stats
    };
    let before = cost(&kg1, Mode::Smart);
    let after = cost(&kg2, Mode::Smart);
    assert!(
        after.total() < before.total(),
        "optimized {} should beat hidden join {}",
        after.total(),
        before.total()
    );
    assert!(after.hash_ops > 0, "the join should execute by hashing");
    assert_eq!(before.hash_ops, 0, "hidden joins offer nothing to hash");
}
