//! Experiment E5 — Figure 4: the KOLA derivations T1K and T2K.
//!
//! The paper shows both Figure 1 transformations as short chains of
//! code-free rule applications. These tests replay the chains, assert the
//! paper's milestone forms and rule justifications, and additionally check
//! every intermediate query evaluates identically on generated data (a
//! check the paper delegates to its Larch proofs).

use kola::parse::parse_query;
use kola_exec::datagen::{generate, DataSpec};
use kola_rewrite::engine::Trace;
use kola_rewrite::strategy::{apply, fix, seq, Runner};
use kola_rewrite::{Catalog, PropDb};

fn run_and_check(start: &str, strategy: kola_rewrite::Strategy, expect_final: &str) -> Trace {
    let catalog = Catalog::paper();
    let props = PropDb::new();
    let runner = Runner::new(&catalog, &props);
    let q = parse_query(start).unwrap();
    let mut trace = Trace::new();
    let (out, _) = runner.run(&strategy, q.clone(), &mut trace);
    assert_eq!(
        out,
        parse_query(expect_final).unwrap(),
        "\nderivation:\n{trace}"
    );

    // Semantic check: every step preserves the query's meaning.
    let db = generate(&DataSpec::small(4242));
    let reference = kola::eval_query(&db, &q).unwrap();
    for step in &trace.steps {
        let got = kola::eval_query(&db, &step.after).unwrap();
        assert_eq!(
            got,
            reference,
            "step [{}] changed the meaning",
            step.justification()
        );
    }
    trace
}

#[test]
fn t1k_composes_iterates() {
    // Figure 4, left column: 11 fuses, then 6 and 5 clean the predicate —
    // applied in the figure's exact order.
    let trace = run_and_check(
        "iterate(Kp(T), city) . iterate(Kp(T), addr) ! P",
        seq(vec![apply("11"), apply("6"), apply("5")]),
        "iterate(Kp(T), city . addr) ! P",
    );
    assert_eq!(trace.justifications(), vec!["11", "6", "5"]);
    // A fixpoint over the same rules reaches the same normal form (though
    // it may order 5 and 6 differently).
    run_and_check(
        "iterate(Kp(T), city) . iterate(Kp(T), addr) ! P",
        fix(&["11", "6", "5"]),
        "iterate(Kp(T), city . addr) ! P",
    );
}

#[test]
fn t2k_decomposes_predicate() {
    // Figure 4, right column. The paper prints the post-11 cleanup
    // implicitly; we fire the cleanups explicitly (3, e32, 1), then follow
    // its 13, 7, 12⁻¹ chain. (Rule 7 prints `lt` here where the paper's
    // figure writes `leq`; see EXPERIMENTS.md on the converse reading.)
    let trace = run_and_check(
        "iterate(Kp(T), age) . iterate(gt @ (age, Kf(25)), id) ! P",
        seq(vec![
            apply("11"),
            fix(&["3", "e32", "1"]),
            apply("13"),
            apply("7"),
            apply("12-1"),
        ]),
        "iterate(Cp(lt, 25), id) . iterate(Kp(T), age) ! P",
    );
    let just = trace.justifications();
    // The paper's milestones, in order.
    for milestone in ["11", "13", "7", "12-1"] {
        assert!(
            just.contains(&milestone.to_string()),
            "missing {milestone} in {just:?}"
        );
    }
    let pos = |m: &str| just.iter().position(|j| j == m).unwrap();
    assert!(pos("11") < pos("13"));
    assert!(pos("13") < pos("7"));
    assert!(pos("7") < pos("12-1"));
}

#[test]
fn t2k_intermediate_matches_paper_form() {
    // After 11 + cleanup, the query is the fused single-pass form the
    // figure prints: iterate(gt ⊕ ⟨age, Kf(25)⟩, age) ! P.
    let catalog = Catalog::paper();
    let props = PropDb::new();
    let runner = Runner::new(&catalog, &props);
    let q = parse_query("iterate(Kp(T), age) . iterate(gt @ (age, Kf(25)), id) ! P").unwrap();
    let mut trace = Trace::new();
    let (out, _) = runner.run(
        &seq(vec![apply("11"), fix(&["3", "e32", "1"])]),
        q,
        &mut trace,
    );
    assert_eq!(
        out,
        parse_query("iterate(gt @ (age, Kf(25)), age) ! P").unwrap()
    );
}

#[test]
fn t1_t2_results_match_figure_1_semantics() {
    // Independently of the derivations: the KOLA start/end forms compute
    // Figure 1's stated meanings on generated data.
    let db = generate(&DataSpec::small(7));
    // "Return the ages of people in P older than 25"
    let q = parse_query("iterate(gt @ (age, Kf(25)), age) ! P").unwrap();
    let got = kola::eval_query(&db, &q).unwrap();
    let people = db.extent("P").unwrap();
    let mut expect = kola::ValueSet::new();
    for p in people.as_set().unwrap().iter() {
        let age = db.get_attr(p, "age").unwrap();
        if age.as_int().unwrap() > 25 {
            expect.insert(age);
        }
    }
    assert_eq!(got, kola::Value::Set(expect));
}
