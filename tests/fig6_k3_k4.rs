//! Experiments E4 + E7 — Figure 2 / Figure 6: the structurally-identical
//! nested queries A3/A4 and the code-motion transformation of K4.
//!
//! §2.2: over AQUA the two queries are structurally identical, so deciding
//! which one admits code motion needs a head routine doing environmental
//! analysis. §3.2: their KOLA translations differ *structurally* (π1 vs
//! π2), so rule 15 applies to K4's form and is simply inapplicable to K3's.

use kola::parse::{parse_func, parse_query};
use kola_aqua::rules::{code_motion, query_a3, query_a4};
use kola_aqua::Machinery;
use kola_exec::datagen::{generate, DataSpec};
use kola_frontend::translate_query;
use kola_rewrite::engine::Trace;
use kola_rewrite::strategy::{fix, Runner};
use kola_rewrite::{Catalog, PropDb};

/// The rule set of the Figure 6 derivation, staged so that rule 14's two
/// orientations never ping-pong: the forward stage exposes rule 15's head,
/// the backward stage (`14-1` with projection cleanup) collapses the
/// residual `⊕ ⟨id, child⟩` environment plumbing.
fn figure6_rules() -> kola_rewrite::Strategy {
    kola_rewrite::Strategy::Seq(vec![
        fix(&["13", "7", "14", "15", "16", "10", "8"]),
        fix(&["9", "10", "1", "2", "3", "8", "14-1"]),
    ])
}

#[test]
fn k4_translation_matches_section_3_2() {
    let k4 = translate_query(&query_a4()).unwrap();
    assert_eq!(
        k4,
        parse_query("iterate(Kp(T), (id, iter(gt @ (age . pi1, Kf(25)), pi2) . (id, child))) ! P")
            .unwrap()
    );
    let k3 = translate_query(&query_a3()).unwrap();
    assert_eq!(
        k3,
        parse_query("iterate(Kp(T), (id, iter(gt @ (age . pi2, Kf(25)), pi2) . (id, child))) ! P")
            .unwrap()
    );
}

#[test]
fn k4_derivation_reaches_figure_6_result() {
    let catalog = Catalog::paper();
    let props = PropDb::new();
    let runner = Runner::new(&catalog, &props);
    let k4 = translate_query(&query_a4()).unwrap();
    let mut trace = Trace::new();
    let (out, _) = runner.run(&figure6_rules(), k4.clone(), &mut trace);
    // Figure 6's end point: the iter loop is gone, replaced by a
    // conditional (`lt` where the figure prints `leq` — converse reading).
    assert_eq!(
        out,
        parse_query("iterate(Kp(T), (id, con(Cp(lt, 25) @ age, child, Kf({})))) ! P").unwrap(),
        "\nderivation:\n{trace}"
    );
    // The paper's cited rules all fire.
    let just = trace.justifications();
    for milestone in ["13", "14", "15", "16"] {
        assert!(just.contains(&milestone.to_string()), "{just:?}");
    }

    // Semantics preserved on data.
    let db = generate(&DataSpec::small(99));
    assert_eq!(
        kola::eval_query(&db, &k4).unwrap(),
        kola::eval_query(&db, &out).unwrap()
    );
}

#[test]
fn k3_blocked_structurally_no_head_routine_needed() {
    let catalog = Catalog::paper();
    let props = PropDb::new();
    let runner = Runner::new(&catalog, &props);
    let k3 = translate_query(&query_a3()).unwrap();
    let mut trace = Trace::new();
    let (out, _) = runner.run(&figure6_rules(), k3.clone(), &mut trace);
    // K3 is simplified by the same initial rules (13, 14 fire)…
    let just = trace.justifications();
    assert!(just.contains(&"13".to_string()), "{just:?}");
    assert!(just.contains(&"14".to_string()), "{just:?}");
    // …but rule 15 never fires: its head demands `… ⊕ π1` and K3 has π2.
    assert!(!just.contains(&"15".to_string()), "{just:?}");
    assert!(
        out.to_string().contains("iter("),
        "K3 keeps its inner loop: {out}"
    );
    // And of course the meaning is unchanged.
    let db = generate(&DataSpec::small(77));
    assert_eq!(
        kola::eval_query(&db, &k3).unwrap(),
        kola::eval_query(&db, &out).unwrap()
    );
}

#[test]
fn rule_15_head_is_a_two_node_pattern() {
    // What replaces the paper's environmental-analysis head routine: a
    // finite pattern. Demonstrate it directly at the function level.
    let catalog = Catalog::paper();
    let rule = catalog.get("15").unwrap();
    let applies = parse_func("iter(Cp(lt, 25) @ age @ pi1, pi2)").unwrap();
    let blocked = parse_func("iter(Cp(lt, 25) @ age @ pi2, pi2)").unwrap();
    assert!(rule
        .apply_func(&applies, kola_rewrite::Direction::Forward)
        .is_some());
    assert!(rule
        .apply_func(&blocked, kola_rewrite::Direction::Forward)
        .is_none());
}

#[test]
fn aqua_side_needs_environmental_analysis() {
    // The §2.2 baseline: code motion over AQUA must run free-variable
    // analysis to distinguish A3 from A4; the KOLA side above used none.
    let mut m = Machinery::default();
    assert!(code_motion(&query_a4(), &mut m).is_some());
    assert!(m.free_var_analyses > 0);
    let mut m = Machinery::default();
    assert!(code_motion(&query_a3(), &mut m).is_none());
    assert!(m.free_var_analyses > 0);
}

#[test]
fn code_motion_result_agrees_with_kola_result() {
    // Both pipelines transform A4; their outputs must agree point-wise.
    let db = generate(&DataSpec::small(3));
    let mut m = Machinery::default();
    let aqua_out = code_motion(&query_a4(), &mut m).unwrap();
    let aqua_val = kola_aqua::eval_closed(&db, &aqua_out).unwrap();

    let catalog = Catalog::paper();
    let props = PropDb::new();
    let runner = Runner::new(&catalog, &props);
    let k4 = translate_query(&query_a4()).unwrap();
    let mut trace = Trace::new();
    let (kola_out, _) = runner.run(&figure6_rules(), k4, &mut trace);
    let kola_val = kola::eval_query(&db, &kola_out).unwrap();
    assert_eq!(aqua_val, kola_val);
}
