//! Experiment E9 — Figure 7: hidden joins nest to *unbounded* depth, yet
//! the five-step strategy of §4.1 untangles every member of the family
//! with the same finite rule set — the paper's argument against monolithic
//! rules whose head routines must dive arbitrarily deep.

use kola_exec::datagen::{generate, DataSpec};
use kola_rewrite::hidden_join::{synthetic_hidden_join, untangle};
use kola_rewrite::monolithic::recognize;
use kola_rewrite::{Catalog, PropDb};

fn db() -> kola::Db {
    let mut db = generate(&DataSpec::small(31));
    // The synthetic family ranges over extents A and B (both person sets).
    let p = db.extent("P").unwrap();
    db.bind_extent("A", p.clone());
    db.bind_extent("B", p);
    db
}

#[test]
fn all_depths_untangle_to_join_form() {
    let catalog = Catalog::paper();
    let props = PropDb::new();
    for n in 1..=6 {
        let q = synthetic_hidden_join(n);
        let out = untangle(&catalog, &props, &q);
        let s = out.query.to_string();
        assert!(s.starts_with("nest(pi1, pi2)"), "depth {n}: {s}");
        assert!(s.contains("join("), "depth {n}: {s}");
        assert!(s.ends_with("! [A, B]"), "depth {n}: {s}");
        // At most one unnest survives at the top (the paper's Step 4 form).
        assert!(s.matches("unnest(").count() <= 1, "depth {n}: {s}");
    }
}

#[test]
fn untangling_preserves_semantics_at_every_depth() {
    let catalog = Catalog::paper();
    let props = PropDb::new();
    let db = db();
    for n in 1..=4 {
        let q = synthetic_hidden_join(n);
        let out = untangle(&catalog, &props, &q);
        let before = kola::eval_query(&db, &q).unwrap();
        let after = kola::eval_query(&db, &out.query).unwrap();
        assert_eq!(before, after, "depth {n}");
    }
}

#[test]
fn derivation_length_grows_linearly_with_depth() {
    // Gradual rules: work scales with the nesting, not exponentially.
    let catalog = Catalog::paper();
    let props = PropDb::new();
    let steps: Vec<usize> = (1..=6)
        .map(|n| {
            untangle(&catalog, &props, &synthetic_hidden_join(n))
                .trace
                .steps
                .len()
        })
        .collect();
    for w in steps.windows(2) {
        assert!(w[1] > w[0], "more depth, more steps: {steps:?}");
    }
    // Linear-ish: the per-level increment stays bounded.
    let increments: Vec<usize> = steps.windows(2).map(|w| w[1] - w[0]).collect();
    let max = increments.iter().max().unwrap();
    let min = increments.iter().min().unwrap();
    assert!(
        max - min <= 2 * min + 8,
        "increments should be near-constant: {increments:?}"
    );
}

#[test]
fn monolithic_head_dive_grows_with_depth() {
    // The monolithic baseline's head routine must dive n+1 levels.
    let mut prev = 0;
    for n in 1..=8 {
        let (hit, stats) = recognize(&synthetic_hidden_join(n));
        assert!(hit.is_some(), "depth {n}");
        assert_eq!(stats.dive_depth, n + 1);
        assert!(stats.nodes_visited > prev);
        prev = stats.nodes_visited;
    }
}

#[test]
fn typechecks_at_every_depth() {
    let env = kola::typecheck::TypeEnv::paper_env();
    let mut env = env;
    let person = env.schema.class_id("Person").unwrap();
    env.bind_extent("A", kola::Type::set(kola::Type::Obj(person)));
    env.bind_extent("B", kola::Type::set(kola::Type::Obj(person)));
    let catalog = Catalog::paper();
    let props = PropDb::new();
    for n in 1..=4 {
        let q = synthetic_hidden_join(n);
        let t_before = kola::typecheck::typecheck_query(&env, &q).unwrap();
        let out = untangle(&catalog, &props, &q);
        let t_after = kola::typecheck::typecheck_query(&env, &out.query).unwrap();
        assert_eq!(t_before, t_after, "depth {n}: untangling preserves types");
    }
}
