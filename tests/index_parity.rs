//! Differential testing of the fast engine stack (hash-consed terms,
//! discrimination-tree rule index, normalization memo) against both the
//! head-symbol index it replaced and the boxed reference engine: identical
//! normal forms, derivations, reports and rule tallies on a governed fuzz
//! corpus — plus the perf-stack regression guarantees (O(changed-subtree)
//! step cost, quarantine reaching the index, active-rule-mask subsets).
//!
//! Three-way structure: `naive ≡ head-indexed ≡ tree-indexed` — the boxed
//! engine is ground truth, the depth-1 head index is the retained oracle,
//! and the tree is the production dispatcher.

use kola::term::{Func, Pred, Query};
use kola_exec::rng::Rng;
use kola_rewrite::fault::{FaultKind, FaultSpec, StepSelector};
use kola_rewrite::{Budget, Catalog, Engine, EngineConfig, FaultPlan, Oriented, PropDb, Rewritten};
use std::sync::Arc;

/// Same untyped-garbage generator family as `tests/robustness.rs`.
fn arb_func(rng: &mut Rng, depth: usize) -> Func {
    if depth == 0 || rng.gen_bool(0.3) {
        return match rng.gen_range(0..13u32) {
            0 => Func::Id,
            1 => Func::Pi1,
            2 => Func::Pi2,
            3 => Func::Flat,
            4 => Func::Bagify,
            5 => Func::Dedup,
            6 => Func::BUnion,
            7 => Func::BFlat,
            8 => Func::SetUnion,
            9 => Func::SetIntersect,
            10 => Func::SetDiff,
            11 => {
                let names = ["age", "addr", "city", "name", "child", "zz"];
                Func::Prim(Arc::from(names[rng.gen_range(0..names.len())]))
            }
            _ => Func::ConstF(Box::new(Query::Lit(kola::Value::Int(rng.gen::<i64>())))),
        };
    }
    match rng.gen_range(0..9u32) {
        0 => Func::Compose(
            Box::new(arb_func(rng, depth - 1)),
            Box::new(arb_func(rng, depth - 1)),
        ),
        1 => Func::PairWith(
            Box::new(arb_func(rng, depth - 1)),
            Box::new(arb_func(rng, depth - 1)),
        ),
        2 => Func::Times(
            Box::new(arb_func(rng, depth - 1)),
            Box::new(arb_func(rng, depth - 1)),
        ),
        3 => Func::Iterate(
            Box::new(arb_pred_leaf(rng)),
            Box::new(arb_func(rng, depth - 1)),
        ),
        4 => Func::Iter(
            Box::new(arb_pred_leaf(rng)),
            Box::new(arb_func(rng, depth - 1)),
        ),
        5 => Func::Join(
            Box::new(arb_pred_leaf(rng)),
            Box::new(arb_func(rng, depth - 1)),
        ),
        6 => Func::BIterate(
            Box::new(arb_pred_leaf(rng)),
            Box::new(arb_func(rng, depth - 1)),
        ),
        7 => Func::Nest(
            Box::new(arb_func(rng, depth - 1)),
            Box::new(arb_func(rng, depth - 1)),
        ),
        _ => Func::Unnest(
            Box::new(arb_func(rng, depth - 1)),
            Box::new(arb_func(rng, depth - 1)),
        ),
    }
}

fn arb_pred_leaf(rng: &mut Rng) -> Pred {
    match rng.gen_range(0..5u32) {
        0 => Pred::Eq,
        1 => Pred::Lt,
        2 => Pred::Gt,
        3 => Pred::In,
        _ => Pred::ConstP(rng.gen::<bool>()),
    }
}

fn arb_query(rng: &mut Rng, depth: usize) -> Query {
    let f = arb_func(rng, depth);
    let base = Query::App(f, Box::new(Query::Extent(Arc::from("P"))));
    if rng.gen_bool(0.3) {
        let g = arb_func(rng, depth.saturating_sub(2));
        Query::PairQ(
            Box::new(base),
            Box::new(Query::App(g, Box::new(Query::Extent(Arc::from("Q"))))),
        )
    } else {
        base
    }
}

/// A mixed-level rule pool: func/pred/query rules, a backward orientation,
/// and a backward orientation of a one-way rule (which must stay inert).
fn rule_pool(catalog: &Catalog) -> Vec<Oriented<'_>> {
    let fwd = [
        "1", "2", "4", "8", "9", "10", "11", "12", // func level
        "3", "5", "6", "7", "13", "14", "e41", "e42", // pred level
        "app", "e121", "e176", "e177", "e179", // query level
    ];
    let mut rules: Vec<Oriented> = fwd
        .iter()
        .map(|id| Oriented::fwd(catalog.get(id).unwrap()))
        .collect();
    rules.push(Oriented::bwd(catalog.get("14").unwrap()));
    rules.push(Oriented::bwd(catalog.get("e120").unwrap())); // one-way
    rules
}

fn assert_same(seed: u64, label: &str, fast: &Rewritten, naive: &Rewritten) {
    assert_eq!(
        fast.query, naive.query,
        "seed {seed} [{label}]: normal form"
    );
    assert_eq!(
        fast.report.steps, naive.report.steps,
        "seed {seed} [{label}]: steps"
    );
    assert_eq!(
        fast.report.stop, naive.report.stop,
        "seed {seed} [{label}]: stop reason"
    );
    assert_eq!(
        fast.report.rule_stats, naive.report.rule_stats,
        "seed {seed} [{label}]: rule tallies"
    );
    assert_eq!(
        fast.trace.justifications(),
        naive.trace.justifications(),
        "seed {seed} [{label}]: derivation"
    );
    assert_eq!(
        fast.report.quarantined, naive.report.quarantined,
        "seed {seed} [{label}]: quarantine"
    );
    assert_eq!(
        fast.report.depth_clipped, naive.report.depth_clipped,
        "seed {seed} [{label}]: depth clip"
    );
}

#[test]
fn fast_engine_parity_on_fuzz_corpus() {
    // ≥1000 generated terms through every layer combination vs. the boxed
    // engine. The fast engines are shared across seeds, so interner, normal
    // marks and memo accumulate — exactly the long-lived usage pattern.
    let catalog = Catalog::paper();
    let props = PropDb::new();
    let rules = rule_pool(&catalog);
    let budget = Budget::with_steps(12).depth(40).term_size(4_096);

    let mut interned = Engine::new(rules.clone(), &props, EngineConfig::interned_only());
    let mut head = Engine::new(rules.clone(), &props, EngineConfig::head_indexed());
    let mut indexed = Engine::new(rules.clone(), &props, EngineConfig::indexed());
    let mut fast = Engine::new(rules.clone(), &props, EngineConfig::fast());

    for seed in 0..1_000u64 {
        let mut rng = Rng::seed_from_u64(0xC0FFEE ^ seed);
        let q = arb_query(&mut rng, 5);
        let naive =
            kola_rewrite::rewrite_fix_with(&rules, &q, &props, &budget, &FaultPlan::default());
        assert_same(seed, "interned", &interned.normalize(&q, &budget), &naive);
        assert_same(seed, "head-indexed", &head.normalize(&q, &budget), &naive);
        assert_same(
            seed,
            "tree-indexed",
            &indexed.normalize(&q, &budget),
            &naive,
        );
        assert_same(seed, "memoized", &fast.normalize(&q, &budget), &naive);
    }
}

#[test]
fn memo_replay_is_identical_and_hits() {
    let catalog = Catalog::paper();
    let props = PropDb::new();
    let rules = rule_pool(&catalog);
    let budget = Budget::with_steps(12).depth(40).term_size(4_096);
    let mut fast = Engine::new(rules.clone(), &props, EngineConfig::fast());

    for seed in 0..200u64 {
        let mut rng = Rng::seed_from_u64(0xBEEF ^ seed);
        let q = arb_query(&mut rng, 5);
        let first = fast.normalize(&q, &budget);
        let replay = fast.normalize(&q, &budget);
        assert_same(seed, "replay", &replay, &first);
    }
    assert!(
        fast.memo_hits() > 0,
        "repeat normalizations never hit the memo"
    );
}

#[test]
fn fast_engine_parity_under_fault_injection() {
    // Fault plans must behave identically in both engines: injected
    // failures, oversize rejections, and the resulting quarantines.
    let catalog = Catalog::paper();
    let props = PropDb::new();
    let rules = rule_pool(&catalog);
    let budget = Budget::with_steps(12)
        .depth(40)
        .term_size(2_048)
        .quarantine_after(2);
    let faults = FaultPlan::new()
        .with(FaultSpec {
            rule_id: "2".into(),
            at: StepSelector::EveryNth(2),
            kind: FaultKind::Fail,
        })
        .with(FaultSpec {
            rule_id: "app".into(),
            at: StepSelector::Steps(vec![1, 3]),
            kind: FaultKind::Oversize(3_000),
        });

    for seed in 0..150u64 {
        let mut rng = Rng::seed_from_u64(0xFA17 ^ seed);
        let q = arb_query(&mut rng, 5);
        let naive = kola_rewrite::rewrite_fix_with(&rules, &q, &props, &budget, &faults);
        // Fresh engines per seed: fault plans make runs unclean, so nothing
        // may be cached from them anyway — but keep the test honest.
        for (label, config) in [
            ("faulted-tree", EngineConfig::fast()),
            ("faulted-head", EngineConfig::head_indexed()),
        ] {
            let mut fast = Engine::new(rules.clone(), &props, config);
            let got = fast.normalize_with(&q, &budget, &faults);
            assert_same(seed, label, &got, &naive);
            assert_eq!(
                got.report.failures, naive.report.failures,
                "seed {seed} [{label}]: failure messages"
            );
        }
    }
}

#[test]
fn step_cost_is_changed_subtree_not_whole_term() {
    // A ~2000-node already-normal sibling next to a 50-redex chain: the
    // naive engine re-scans the sibling on every step; the fast engine's
    // normal-subtree marks and cached sizes make each step O(changed
    // subtree). `work()` counts node visits plus interner constructions.
    fn big_normal(depth: usize) -> Func {
        if depth == 0 {
            Func::Prim(Arc::from("age"))
        } else {
            Func::PairWith(
                Box::new(big_normal(depth - 1)),
                Box::new(big_normal(depth - 1)),
            )
        }
    }
    let mut chain = Func::Prim(Arc::from("age"));
    for _ in 0..50 {
        chain = Func::Compose(Box::new(Func::Id), Box::new(chain));
    }
    let q = Query::PairQ(
        Box::new(Query::App(
            big_normal(10), // 2^11 - 1 = 2047 nodes
            Box::new(Query::Extent(Arc::from("P"))),
        )),
        Box::new(Query::App(chain, Box::new(Query::Extent(Arc::from("Q"))))),
    );

    let catalog = Catalog::paper();
    let props = PropDb::new();
    let rules: Vec<Oriented> = ["1", "2"]
        .iter()
        .map(|id| Oriented::fwd(catalog.get(id).unwrap()))
        .collect();
    let budget = Budget::with_steps(500);

    let naive = kola_rewrite::rewrite_fix_governed(&rules, &q, &props, &budget);
    let mut fast = Engine::new(rules.clone(), &props, EngineConfig::fast());
    let got = fast.normalize(&q, &budget);
    assert_same(0, "2000-node", &got, &naive);
    assert_eq!(got.report.steps, 50);

    // Interning the input costs ~2100 constructions and the first scan
    // ~2100 visits; every subsequent step must only touch the redex path.
    // The naive equivalent would be 50 steps × ~2100 nodes ≳ 100_000.
    let work = fast.work();
    assert!(
        work < 12_000,
        "step cost scales with whole term, not changed subtree: work = {work}"
    );
}

#[test]
fn quarantine_prunes_rule_index() {
    // A rule that always fails gets quarantined; from the next step on it
    // must not even be *consulted* via the index, and the index must report
    // it gone. Checked for both index kinds: the discrimination tree prunes
    // its accept lists in place (journaled, O(pattern depth)); the head
    // index empties its buckets via rebuild.
    let catalog = Catalog::paper();
    let props = PropDb::new();
    let rules: Vec<Oriented> = ["9", "2"]
        .iter()
        .map(|id| Oriented::fwd(catalog.get(id).unwrap()))
        .collect();
    let faults = FaultPlan::new().with(FaultSpec {
        rule_id: "9".into(),
        at: StepSelector::Always,
        kind: FaultKind::Fail,
    });
    let budget = Budget::with_steps(100).quarantine_after(1);

    // pi1 . (age, city) . id . id . id . age — rule 9 matches at the root
    // window (and faults); rule 2 then strips the ids one step at a time.
    let f = kola::parse::parse_func("pi1 . (age, city) . id . id . id . age").unwrap();
    let q = Query::App(f, Box::new(Query::Extent(Arc::from("P"))));

    let naive = kola_rewrite::rewrite_fix_with(&rules, &q, &props, &budget, &faults);
    for (label, config) in [
        ("tree", EngineConfig::indexed()),
        ("head", EngineConfig::head_indexed()),
    ] {
        let mut fast = Engine::new(rules.clone(), &props, config);
        let got = fast.normalize_with(&q, &budget, &faults);
        assert_same(0, label, &got, &naive);

        assert_eq!(got.report.quarantined, vec!["9".to_string()], "[{label}]");
        assert!(
            got.report.steps >= 3,
            "[{label}] rule 2 kept rewriting after quarantine"
        );
        assert!(
            !fast.index_contains("9"),
            "[{label}] quarantined rule still present in index"
        );
        assert_eq!(
            fast.consult_count("9"),
            1,
            "[{label}] quarantined rule was consulted again via the index"
        );
    }
}

#[test]
fn active_rule_mask_subsets_agree_across_all_indexes() {
    // PR 4's per-tenant active-rule masks: an engine with rules disabled
    // via `set_epoch` must behave exactly like a naive run over the
    // filtered pool — under both index kinds, across many mask subsets.
    let catalog = Catalog::paper();
    let props = PropDb::new();
    let rules = rule_pool(&catalog);
    let budget = Budget::with_steps(12).depth(40).term_size(4_096);

    let masks: [&[&str]; 4] = [
        &["app"],
        &["2", "14"],
        &["e121", "9", "11", "e41"],
        &["1", "2", "3", "5", "6", "7", "10", "12", "13"],
    ];

    let mut tree = Engine::new(rules.clone(), &props, EngineConfig::indexed());
    let mut head = Engine::new(rules.clone(), &props, EngineConfig::head_indexed());

    for (m, mask) in masks.iter().enumerate() {
        let disabled: Vec<String> = mask.iter().map(|s| s.to_string()).collect();
        let filtered: Vec<Oriented> = rules
            .iter()
            .filter(|o| !mask.contains(&o.rule.id.as_str()))
            .cloned()
            .collect();
        tree.set_epoch(m as u64 + 1, &disabled);
        head.set_epoch(m as u64 + 1, &disabled);

        for seed in 0..100u64 {
            let mut rng = Rng::seed_from_u64(0x3A5C ^ (m as u64) << 32 ^ seed);
            let q = arb_query(&mut rng, 5);
            let naive = kola_rewrite::rewrite_fix_with(
                &filtered,
                &q,
                &props,
                &budget,
                &FaultPlan::default(),
            );
            assert_same(seed, "mask-tree", &tree.normalize(&q, &budget), &naive);
            assert_same(seed, "mask-head", &head.normalize(&q, &budget), &naive);
        }
    }
}
