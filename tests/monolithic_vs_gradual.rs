//! Experiment E13 — §4.2's two arguments against monolithic rules:
//! (1) their head routines must dive to unbounded depth, and (2) a failed
//! match leaves the query unsimplified, while the gradual strategy's early
//! steps still make progress.

use kola::parse::parse_query;
use kola_rewrite::hidden_join::{synthetic_hidden_join, untangle};
use kola_rewrite::monolithic::{recognize, try_monolithic};
use kola_rewrite::{Catalog, PropDb};

#[test]
fn monolithic_and_gradual_agree_on_hidden_joins() {
    let catalog = Catalog::paper();
    let props = PropDb::new();
    for n in 1..=4 {
        let q = synthetic_hidden_join(n);
        let (mono, stats) = try_monolithic(&catalog, &props, &q);
        let gradual = untangle(&catalog, &props, &q);
        assert_eq!(mono.expect("recognized"), gradual.query, "depth {n}");
        assert_eq!(stats.dive_depth, n + 1);
    }
}

#[test]
fn near_miss_queries_waste_the_whole_dive() {
    // A family of near-misses: hidden joins whose innermost constant is
    // replaced by a dependent collection. The monolithic head dives all the
    // way down before failing, visiting more nodes the deeper the query.
    let near_miss = |n: usize| {
        let mut body = String::from("child"); // not Kf(B): depends on env
        for _ in 0..n {
            body = format!("flat . iter(Kp(T), child . pi2) . (id, {body})");
        }
        parse_query(&format!("iterate(Kp(T), (id, {body})) ! A")).unwrap()
    };
    let mut prev = 0;
    for n in 1..=6 {
        let (hit, stats) = recognize(&near_miss(n));
        assert!(hit.is_none(), "depth {n} must be rejected");
        assert!(
            stats.dive_depth >= n,
            "must dive {n} levels, got {}",
            stats.dive_depth
        );
        assert!(stats.nodes_visited > prev);
        prev = stats.nodes_visited;
    }
}

#[test]
fn gradual_still_simplifies_what_monolithic_rejects() {
    let catalog = Catalog::paper();
    let props = PropDb::new();
    // The near-miss above is not transformable into a join, but Step 1
    // still breaks it into a composition chain and Step 2's plumbing
    // still simplifies — "the query has still been simplified enough that
    // other appropriate strategies can be simply considered".
    let q = parse_query("iterate(Kp(T), (id, flat . iter(Kp(T), child . pi2) . (id, child))) ! A")
        .unwrap();
    let (mono, _) = try_monolithic(&catalog, &props, &q);
    assert!(mono.is_none(), "monolithic rejects and does nothing");

    let gradual = untangle(&catalog, &props, &q);
    assert_ne!(gradual.query, q, "gradual made progress anyway");
    assert!(
        !gradual.trace.steps.is_empty(),
        "rules fired: {}",
        gradual.trace
    );
    // Specifically, the monolithic iterate got broken up.
    let s = gradual.query.to_string();
    assert!(
        s.contains("iterate(Kp(T), (pi1,"),
        "step-1 chain visible: {s}"
    );

    // And the simplification is still meaning-preserving.
    let mut db = kola_exec::generate(&kola_exec::DataSpec::small(17));
    let p = db.extent("P").unwrap();
    db.bind_extent("A", p);
    assert_eq!(
        kola::eval_query(&db, &q).unwrap(),
        kola::eval_query(&db, &gradual.query).unwrap()
    );
}

#[test]
fn small_rule_heads_are_constant_size() {
    // Every Figure 5/8 rule head is a fixed finite pattern: measure their
    // sizes and confirm they are tiny and depth-independent, in contrast
    // to the monolithic dive.
    let catalog = Catalog::paper();
    for id in (1..=24).map(|i| i.to_string()) {
        let rule = catalog.get(&id).unwrap();
        for alt in &rule.alts {
            let head_size = match alt {
                kola_rewrite::rule::RewritePair::F(l, _) => pfunc_size(l),
                kola_rewrite::rule::RewritePair::P(l, _) => ppred_size(l),
                kola_rewrite::rule::RewritePair::Q(l, _) => pquery_size(l),
            };
            assert!(head_size <= 40, "rule {id} head is {head_size} nodes");
        }
    }
}

fn pfunc_size(f: &kola::pattern::PFunc) -> usize {
    // Patterns mirror terms; reuse concrete size via a display round trip
    // approximation: count nodes by rendering length heuristics is fragile,
    // so walk the structure.
    use kola::pattern::PFunc as F;
    match f {
        F::Var(_)
        | F::Id
        | F::Pi1
        | F::Pi2
        | F::Prim(_)
        | F::Flat
        | F::SetUnion
        | F::SetIntersect
        | F::SetDiff
        | F::Bagify
        | F::Dedup
        | F::BUnion
        | F::BFlat => 1,
        F::Compose(a, b) | F::PairWith(a, b) | F::Times(a, b) => 1 + pfunc_size(a) + pfunc_size(b),
        F::ConstF(q) => 1 + pquery_size(q),
        F::CurryF(a, q) => 1 + pfunc_size(a) + pquery_size(q),
        F::Cond(p, a, b) => 1 + ppred_size(p) + pfunc_size(a) + pfunc_size(b),
        F::Iterate(p, a) | F::Iter(p, a) | F::Join(p, a) | F::BIterate(p, a) => {
            1 + ppred_size(p) + pfunc_size(a)
        }
        F::Nest(a, b) | F::Unnest(a, b) => 1 + pfunc_size(a) + pfunc_size(b),
    }
}

fn ppred_size(p: &kola::pattern::PPred) -> usize {
    use kola::pattern::PPred as P;
    match p {
        P::Var(_)
        | P::Eq
        | P::Lt
        | P::Leq
        | P::Gt
        | P::Geq
        | P::In
        | P::PrimP(_)
        | P::ConstP(_) => 1,
        P::Oplus(a, f) => 1 + ppred_size(a) + pfunc_size(f),
        P::And(a, b) | P::Or(a, b) => 1 + ppred_size(a) + ppred_size(b),
        P::Not(a) | P::Conv(a) => 1 + ppred_size(a),
        P::CurryP(a, q) => 1 + ppred_size(a) + pquery_size(q),
    }
}

fn pquery_size(q: &kola::pattern::PQuery) -> usize {
    use kola::pattern::PQuery as Q;
    match q {
        Q::Var(_) | Q::Lit(_) | Q::Extent(_) => 1,
        Q::PairQ(a, b) | Q::Union(a, b) | Q::Intersect(a, b) | Q::Diff(a, b) => {
            1 + pquery_size(a) + pquery_size(b)
        }
        Q::App(f, a) => 1 + pfunc_size(f) + pquery_size(a),
        Q::Test(p, a) => 1 + ppred_size(p) + pquery_size(a),
    }
}
