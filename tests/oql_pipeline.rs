//! End-to-end pipeline: OQL text → AQUA → KOLA → optimize (COKO) →
//! execute. Every stage is checked against the previous one's semantics.

use kola_coko::stdlib::{simplify_strategy, untangle_strategy};
use kola_exec::datagen::{generate, DataSpec};
use kola_exec::{Executor, Mode};
use kola_frontend::{oql_to_kola, parse_oql};
use kola_rewrite::engine::Trace;
use kola_rewrite::strategy::Runner;
use kola_rewrite::{Catalog, PropDb};

#[test]
fn select_where_pipeline() {
    let db = generate(&DataSpec::small(1));
    let src = "select p.addr from p in P where p.age > 30";
    let aqua = parse_oql(src).unwrap();
    let aqua_val = kola_aqua::eval_closed(&db, &aqua).unwrap();
    let kola_q = oql_to_kola(src).unwrap();
    let kola_val = kola::eval_query(&db, &kola_q).unwrap();
    assert_eq!(aqua_val, kola_val);

    // Optimize with the COKO Simplify block; meaning unchanged, and the
    // two cascaded iterates fuse into one pass.
    let catalog = Catalog::paper();
    let props = PropDb::new();
    let runner = Runner::new(&catalog, &props);
    let mut trace = Trace::new();
    let (optimized, _) = runner.run(&simplify_strategy().unwrap(), kola_q.clone(), &mut trace);
    assert_eq!(kola::eval_query(&db, &optimized).unwrap(), kola_val);
    assert!(
        optimized.to_string().matches("iterate(").count()
            <= kola_q.to_string().matches("iterate(").count()
    );
}

#[test]
fn garage_oql_to_optimized_execution() {
    let db = generate(&DataSpec::scaled(6, 5));
    let src = "select [v, flatten(select p.grgs from p in P where v in p.cars)] \
               from v in V";
    let kola_q = oql_to_kola(src).unwrap();
    let reference = kola::eval_query(&db, &kola_q).unwrap();

    let catalog = Catalog::paper();
    let props = PropDb::new();
    let runner = Runner::new(&catalog, &props);
    let mut trace = Trace::new();
    let (optimized, _) = runner.run(&untangle_strategy().unwrap(), kola_q.clone(), &mut trace);
    assert!(optimized.to_string().contains("join("), "{optimized}");
    assert_eq!(kola::eval_query(&db, &optimized).unwrap(), reference);

    // The optimized plan executes more cheaply under hash operators.
    let mut before = Executor::new(&db, Mode::Smart);
    before.run(&kola_q).unwrap();
    let mut after = Executor::new(&db, Mode::Smart);
    after.run(&optimized).unwrap();
    assert!(
        after.stats.total() < before.stats.total(),
        "after {:?} vs before {:?}",
        after.stats,
        before.stats
    );
}

#[test]
fn nested_oql_queries_translate_and_run() {
    let db = generate(&DataSpec::small(9));
    for src in [
        "select p.age from p in P",
        "select [p, p.age] from p in P where p.age >= 18",
        "select [p, (select c.age from c in p.child)] from p in P",
        "select [p, (select c from c in p.child where c.age > 10)] from p in P",
        "flatten(select p.child from p in P)",
    ] {
        let aqua = parse_oql(src).unwrap();
        let aqua_val = kola_aqua::eval_closed(&db, &aqua).unwrap_or_else(|e| panic!("{src}: {e}"));
        let k = oql_to_kola(src).unwrap();
        let kola_val = kola::eval_query(&db, &k).unwrap_or_else(|e| panic!("{src}: {e}"));
        assert_eq!(aqua_val, kola_val, "{src}");
    }
}

#[test]
fn code_motion_style_oql_queries() {
    // The A3/A4 pair straight from OQL: the where-clause variable decides.
    let db = generate(&DataSpec::small(13));
    let a3 = "select [p, (select c from c in p.child where c.age > 25)] from p in P";
    let a4 = "select [p, (select c from c in p.child where p.age > 25)] from p in P";
    let k3 = oql_to_kola(a3).unwrap();
    let k4 = oql_to_kola(a4).unwrap();
    assert_ne!(k3, k4, "structurally distinct in KOLA");
    assert!(k3.to_string().contains("age . pi2"));
    assert!(k4.to_string().contains("age . pi1"));
    // Both run.
    kola::eval_query(&db, &k3).unwrap();
    kola::eval_query(&db, &k4).unwrap();
}
