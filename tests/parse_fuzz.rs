//! Parser robustness: `kola::parse` and the OQL frontend must never
//! panic, on anything.
//!
//! Two attacks, run against both frontends: (1) ~1000 seeded byte-level
//! mutations of valid concrete syntax — insertions, deletions,
//! replacements, swaps, truncations, and non-ASCII garbage — must parse
//! or fail, never panic (for OQL that covers the whole
//! parse → lower-to-KOLA pipeline); (2) round trips on the valid corpora
//! must be stable: parse → display → parse is the identity for KOLA
//! text, and OQL lowering is deterministic with a printable result that
//! reparses to the same term.

use kola_exec::rng::Rng;

const CORPUS: &[&str] = &[
    "P",
    "()",
    "{1, 2, 3}",
    "[V, P]",
    "P union Q",
    "A union B intersect C",
    "gt ? [3, 2]",
    "id . age ! P",
    "age . id ! P",
    "sunion ! [P, Q]",
    "iterate(Kp(T), age) ! P",
    "iterate(Kp(T), city) . iterate(Kp(T), addr) ! P",
    "iterate(Kp(T), city . addr) ! P",
    "iterate(gt @ (age, Kf(25)), age) ! P",
    "id . id . id . id . age ! P",
];

fn mutate(src: &str, rng: &mut Rng) -> String {
    let mut bytes: Vec<u8> = src.as_bytes().to_vec();
    let edits = 1 + rng.gen_range(0..4usize);
    for _ in 0..edits {
        let kind = rng.gen_range(0..6usize);
        let pos = if bytes.is_empty() {
            0
        } else {
            rng.gen_range(0..bytes.len())
        };
        match kind {
            // Insert a printable or arbitrary byte.
            0 => {
                let b = if rng.gen_bool(0.7) {
                    b' ' + (rng.gen_range(0..95usize) as u8)
                } else {
                    rng.gen_range(0..256usize) as u8
                };
                bytes.insert(pos, b);
            }
            // Delete.
            1 => {
                if !bytes.is_empty() {
                    bytes.remove(pos);
                }
            }
            // Replace.
            2 => {
                if !bytes.is_empty() {
                    bytes[pos] = rng.gen_range(0..256usize) as u8;
                }
            }
            // Swap two positions.
            3 => {
                if !bytes.is_empty() {
                    let other = rng.gen_range(0..bytes.len());
                    bytes.swap(pos, other);
                }
            }
            // Truncate.
            4 => bytes.truncate(pos),
            // Duplicate a slice (grows nesting-ish shapes).
            _ => {
                if !bytes.is_empty() {
                    let end = pos + rng.gen_range(0..(bytes.len() - pos).min(8) + 1);
                    let slice: Vec<u8> = bytes[pos..end].to_vec();
                    for (i, b) in slice.into_iter().enumerate() {
                        bytes.insert(end + i, b);
                    }
                }
            }
        }
    }
    // Parsing operates on &str; lossily re-encode the mutated bytes.
    String::from_utf8_lossy(&bytes).into_owned()
}

#[test]
fn thousand_seeded_mutations_never_panic_the_parser() {
    for seed in 0..1000u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let base = CORPUS[rng.gen_range(0..CORPUS.len())];
        let mutated = mutate(base, &mut rng);
        // Err is fine; a panic aborts the whole test.
        let _ = kola::parse::parse_query(&mutated);
        let _ = kola::parse::parse_func(&mutated);
    }
}

const OQL_CORPUS: &[&str] = &[
    "select p from p in P",
    "select p.age from p in P",
    "select p.addr.city from p in P",
    "select p.age from p in P where p.age > 25",
    "select p from p in P where p.age = 30",
    "select p from p in P where p.age > 18 and not p.age > 65",
    "select p from p in P where p.age > 18 or p.age = 0",
    "select p.name from p in People where not p.retired = 1",
];

#[test]
fn thousand_seeded_mutations_never_panic_the_oql_frontend() {
    for seed in 0..1000u64 {
        let mut rng = Rng::seed_from_u64(0x00F1_u64.wrapping_add(seed));
        let base = OQL_CORPUS[rng.gen_range(0..OQL_CORPUS.len())];
        let mutated = mutate(base, &mut rng);
        // The full pipeline: OQL parse, then lowering to KOLA. Err is
        // fine; a panic aborts the whole test.
        let _ = kola_frontend::oql::parse_oql(&mutated);
        if let Ok(q) = kola_frontend::oql::oql_to_kola(&mutated) {
            // Whatever survived mutation AND lowered must still print and
            // reparse: the service hands exactly these terms onward.
            let printed = q.to_string();
            let _ = kola::parse::parse_query(&printed);
        }
    }
}

#[test]
fn oql_lowering_is_stable_and_its_output_round_trips() {
    for src in OQL_CORPUS {
        let q1 = kola_frontend::oql::oql_to_kola(src)
            .unwrap_or_else(|e| panic!("corpus entry must lower: {src}: {e}"));
        // Deterministic: lowering the same text twice yields one term.
        let q2 = kola_frontend::oql::oql_to_kola(src).unwrap();
        assert_eq!(q1, q2, "lowering is not deterministic for {src}");
        // The lowered term prints to valid KOLA concrete syntax that
        // reparses to the same term (display/parse agreement extends to
        // frontend output, which is what reaches the service as an AST).
        let printed = q1.to_string();
        let reparsed = kola::parse::parse_query(&printed)
            .unwrap_or_else(|e| panic!("lowered form must reparse: {printed}: {e}"));
        assert_eq!(
            q1, reparsed,
            "round trip changed the lowered term for {src}"
        );
        assert_eq!(
            printed,
            reparsed.to_string(),
            "display is not a fixpoint for lowered {src}"
        );
    }
}

#[test]
fn parse_display_parse_is_the_identity_on_the_corpus() {
    for src in CORPUS {
        let q1 = kola::parse::parse_query(src)
            .unwrap_or_else(|e| panic!("corpus entry must parse: {src}: {e}"));
        let printed = q1.to_string();
        let q2 = kola::parse::parse_query(&printed)
            .unwrap_or_else(|e| panic!("printed form must reparse: {printed}: {e}"));
        assert_eq!(q1, q2, "round trip changed the term for {src}");
        assert_eq!(
            printed,
            q2.to_string(),
            "display is not a fixpoint for {src}"
        );
    }
}
