//! Experiment E14 — §4.2's declarative preconditions: `injective(f)` is an
//! annotation plus inference rules, not a head routine, and it gates the
//! paper's intersection-pushing rule end to end.

use kola::parse::parse_query;
use kola_exec::datagen::{generate, DataSpec};
use kola_rewrite::engine::{rewrite_once_query, Oriented};
use kola_rewrite::{Catalog, PropDb, PropKind};

#[test]
fn injective_inference_follows_the_papers_rule() {
    // injective(f) ∧ injective(g) ⇒ injective(f ∘ g)
    let mut props = PropDb::new();
    props.declare_injective("name");
    let f = kola::parse::parse_func("id . name").unwrap();
    assert!(props.holds(PropKind::Injective, &f));
    let g = kola::parse::parse_func("age . addr").unwrap();
    assert!(!props.holds(PropKind::Injective, &g));
}

#[test]
fn intersection_rule_gated_by_annotation() {
    let catalog = Catalog::paper();
    let rule = catalog.get("e100").unwrap();
    let q = parse_query("(iterate(Kp(T), name) ! A) intersect (iterate(Kp(T), name) ! B)").unwrap();
    let rules = [Oriented::fwd(rule)];

    // No annotation: the rule must not fire.
    let bare = PropDb::new();
    assert!(rewrite_once_query(&rules, &q, &bare).is_none());

    // With `name` declared a key: it fires and produces the pushed form.
    let mut props = PropDb::new();
    props.declare_injective("name");
    let applied = rewrite_once_query(&rules, &q, &props).expect("fires");
    assert_eq!(
        applied.result,
        parse_query("iterate(Kp(T), name) ! (A intersect B)").unwrap()
    );
}

#[test]
fn gating_is_semantically_justified() {
    // `name` is unique per person in our generator? It is ("person{i}"),
    // so pushing intersection through it is sound; `age` is NOT unique, and
    // pushing through it can change results. Demonstrate both on data.
    let mut db = generate(&DataSpec {
        persons: 30,
        ..DataSpec::small(8)
    });
    let people: Vec<kola::Value> = db
        .extent("P")
        .unwrap()
        .as_set()
        .unwrap()
        .iter()
        .cloned()
        .collect();
    let half_a: kola::Value = kola::Value::set(people[..20].to_vec());
    let half_b: kola::Value = kola::Value::set(people[10..].to_vec());
    db.bind_extent("A", half_a);
    db.bind_extent("B", half_b);

    let pushed = |f: &str| parse_query(&format!("iterate(Kp(T), {f}) ! (A intersect B)")).unwrap();
    let unpushed = |f: &str| {
        parse_query(&format!(
            "(iterate(Kp(T), {f}) ! A) intersect (iterate(Kp(T), {f}) ! B)"
        ))
        .unwrap()
    };

    // Injective attribute: both forms agree.
    assert_eq!(
        kola::eval_query(&db, &pushed("name")).unwrap(),
        kola::eval_query(&db, &unpushed("name")).unwrap()
    );
    // Non-injective attribute: forms can disagree (ages collide across the
    // two halves). With 30 people of ages 1..=90, a collision across the
    // disjoint parts is near-certain for this seed; assert inequality.
    let p = kola::eval_query(&db, &pushed("age")).unwrap();
    let u = kola::eval_query(&db, &unpushed("age")).unwrap();
    assert_ne!(p, u, "seed picked pathological ages; adjust seed");
}

#[test]
fn totality_property_also_inferable() {
    let mut props = PropDb::new();
    props.declare_partial("addr");
    let f = kola::parse::parse_func("iterate(Kp(T), city . addr)").unwrap();
    assert!(!props.holds(PropKind::Total, &f));
    let g = kola::parse::parse_func("iterate(Kp(T), age)").unwrap();
    assert!(props.holds(PropKind::Total, &g));
}
