//! Property-style tests on core invariants, driven by the type-directed
//! term generator and the vendored deterministic PRNG: print/parse
//! round-trips, normalization soundness, and semantic invariants of the set
//! combinators. Each test sweeps a fixed seed range, so failures reproduce
//! exactly.

use kola::parse::{parse_func, parse_pred};
use kola::typecheck::TypeEnv;
use kola::types::Type;
use kola_exec::datagen::{generate, DataSpec};
use kola_exec::rng::Rng;
use kola_verify::{palette, Gen};

const CASES: u64 = 128;

fn random_sig(seed: u64) -> (Type, Type) {
    let p = palette();
    let a = p[(seed % p.len() as u64) as usize].clone();
    let b = p[((seed / 7) % p.len() as u64) as usize].clone();
    (a, b)
}

#[test]
fn printer_parser_round_trip_funcs() {
    let db = generate(&DataSpec::small(1));
    for seed in 0..CASES {
        let mut g = Gen::new(&db, Rng::seed_from_u64(seed));
        let (input, output) = random_sig(seed);
        let f = g.func(&input, &output, 3);
        let printed = f.to_string();
        let reparsed = parse_func(&printed).unwrap_or_else(|e| panic!("{printed}: {e}"));
        assert_eq!(reparsed, f, "seed {seed}");
    }
}

#[test]
fn printer_parser_round_trip_preds() {
    let db = generate(&DataSpec::small(2));
    for seed in 0..CASES {
        let mut g = Gen::new(&db, Rng::seed_from_u64(seed));
        let (input, _) = random_sig(seed);
        let p = g.pred(&input, 3);
        let printed = p.to_string();
        let reparsed = parse_pred(&printed).unwrap_or_else(|e| panic!("{printed}: {e}"));
        assert_eq!(reparsed, p, "seed {seed}");
    }
}

#[test]
fn normalization_is_idempotent_and_semantics_preserving() {
    let db = generate(&DataSpec::small(3));
    for seed in 0..CASES {
        let mut g = Gen::new(&db, Rng::seed_from_u64(seed));
        let (input, output) = random_sig(seed);
        let f = g.func(&input, &output, 3);
        let n1 = f.normalize();
        assert_eq!(n1.normalize(), n1, "seed {seed}");
        let x = g.value(&input);
        let before = kola::eval_func(&db, &f, &x);
        let after = kola::eval_func(&db, &n1, &x);
        assert_eq!(before, after, "seed {seed}");
    }
}

#[test]
fn typecheck_accepts_generated_never_panics() {
    let db = generate(&DataSpec::small(4));
    let env = TypeEnv::paper_env();
    for seed in 0..CASES {
        let mut g = Gen::new(&db, Rng::seed_from_u64(seed));
        let (input, output) = random_sig(seed);
        let f = g.func(&input, &output, 3);
        assert!(
            kola::typecheck::typecheck_func(&env, &f).is_ok(),
            "seed {seed}: {f}"
        );
    }
}

#[test]
fn iterate_filters_are_subsets() {
    // iterate(p, id) ! A ⊆ A for any predicate p.
    let db = generate(&DataSpec::small(5));
    for seed in 0..CASES {
        let mut g = Gen::new(&db, Rng::seed_from_u64(seed));
        let elem = Type::Int;
        let p = g.pred(&elem, 2);
        let a = g.value(&Type::set(elem));
        let f = kola::builder::iterate(p, kola::builder::id());
        let out = kola::eval_func(&db, &f, &a).unwrap();
        let (out_set, a_set) = (out.as_set().unwrap(), a.as_set().unwrap());
        assert!(out_set.iter().all(|v| a_set.contains(v)), "seed {seed}");
    }
}

#[test]
fn flat_union_law() {
    // flat ! (A ∪ B at the set-of-sets level) == flat!A ∪ flat!B.
    let db = generate(&DataSpec::small(6));
    for seed in 0..CASES {
        let mut g = Gen::new(&db, Rng::seed_from_u64(seed));
        let ss = Type::set(Type::set(Type::Int));
        let a = g.value(&ss);
        let b = g.value(&ss);
        let u = kola::Value::Set(a.as_set().unwrap().union(b.as_set().unwrap()));
        let flat = kola::builder::flat();
        let lhs = kola::eval_func(&db, &flat, &u).unwrap();
        let fa = kola::eval_func(&db, &flat, &a).unwrap();
        let fb = kola::eval_func(&db, &flat, &b).unwrap();
        let rhs = kola::Value::Set(fa.as_set().unwrap().union(fb.as_set().unwrap()));
        assert_eq!(lhs, rhs, "seed {seed}");
    }
}

#[test]
fn nest_covers_second_input_exactly() {
    // nest(f, g) ! [A, B] has exactly one group per element of B.
    let db = generate(&DataSpec::small(7));
    for seed in 0..CASES {
        let mut g = Gen::new(&db, Rng::seed_from_u64(seed));
        let pair_set = Type::set(Type::pair(Type::Int, Type::Int));
        let a = g.value(&pair_set);
        let b = g.value(&Type::set(Type::Int));
        let f = kola::builder::nest(kola::builder::pi1(), kola::builder::pi2());
        let out = kola::eval_func(&db, &f, &kola::Value::pair(a, b.clone())).unwrap();
        let keys: Vec<_> = out
            .as_set()
            .unwrap()
            .iter()
            .map(|p| p.as_pair().unwrap().0.clone())
            .collect();
        let b_elems: Vec<_> = b.as_set().unwrap().iter().cloned().collect();
        assert_eq!(keys, b_elems, "seed {seed}");
    }
}
