//! Failure injection: the evaluator, typechecker, parsers and rewrite
//! engine must *never panic* — ill-typed terms get `Err`, garbage input
//! gets parse errors, and rewriting arbitrary (even ill-typed) terms is
//! total. Driven by the vendored deterministic PRNG so every failure
//! reproduces from its seed.

use kola::term::{Func, Pred, Query};
use kola::value::Value;
use kola_exec::rng::Rng;
use std::sync::Arc;

const CASES: u64 = 256;

/// An *untyped* random function generator — deliberately produces ill-typed
/// terms so the error paths get exercised.
fn arb_func(rng: &mut Rng, depth: usize) -> Func {
    if depth == 0 || rng.gen_bool(0.3) {
        return match rng.gen_range(0..13u32) {
            0 => Func::Id,
            1 => Func::Pi1,
            2 => Func::Pi2,
            3 => Func::Flat,
            4 => Func::Bagify,
            5 => Func::Dedup,
            6 => Func::BUnion,
            7 => Func::BFlat,
            8 => Func::SetUnion,
            9 => Func::SetIntersect,
            10 => Func::SetDiff,
            11 => {
                let names = ["age", "addr", "city", "name", "child", "zz"];
                Func::Prim(Arc::from(names[rng.gen_range(0..names.len())]))
            }
            _ => Func::ConstF(Box::new(Query::Lit(Value::Int(rng.gen::<i64>())))),
        };
    }
    match rng.gen_range(0..9u32) {
        0 => Func::Compose(
            Box::new(arb_func(rng, depth - 1)),
            Box::new(arb_func(rng, depth - 1)),
        ),
        1 => Func::PairWith(
            Box::new(arb_func(rng, depth - 1)),
            Box::new(arb_func(rng, depth - 1)),
        ),
        2 => Func::Times(
            Box::new(arb_func(rng, depth - 1)),
            Box::new(arb_func(rng, depth - 1)),
        ),
        3 => Func::Iterate(
            Box::new(arb_pred_leaf(rng)),
            Box::new(arb_func(rng, depth - 1)),
        ),
        4 => Func::Iter(
            Box::new(arb_pred_leaf(rng)),
            Box::new(arb_func(rng, depth - 1)),
        ),
        5 => Func::Join(
            Box::new(arb_pred_leaf(rng)),
            Box::new(arb_func(rng, depth - 1)),
        ),
        6 => Func::BIterate(
            Box::new(arb_pred_leaf(rng)),
            Box::new(arb_func(rng, depth - 1)),
        ),
        7 => Func::Nest(
            Box::new(arb_func(rng, depth - 1)),
            Box::new(arb_func(rng, depth - 1)),
        ),
        _ => Func::Unnest(
            Box::new(arb_func(rng, depth - 1)),
            Box::new(arb_func(rng, depth - 1)),
        ),
    }
}

fn arb_pred_leaf(rng: &mut Rng) -> Pred {
    match rng.gen_range(0..5u32) {
        0 => Pred::Eq,
        1 => Pred::Lt,
        2 => Pred::Gt,
        3 => Pred::In,
        _ => Pred::ConstP(rng.gen::<bool>()),
    }
}

fn arb_value(rng: &mut Rng, depth: usize) -> Value {
    if depth == 0 || rng.gen_bool(0.4) {
        return match rng.gen_range(0..4u32) {
            0 => Value::Unit,
            1 => Value::Bool(rng.gen::<bool>()),
            2 => Value::Int(rng.gen::<i64>()),
            _ => {
                let words = ["", "a", "bc", "xyz"];
                Value::str(words[rng.gen_range(0..words.len())])
            }
        };
    }
    if rng.gen_bool(0.5) {
        Value::pair(arb_value(rng, depth - 1), arb_value(rng, depth - 1))
    } else {
        let n = rng.gen_range(0..4usize);
        Value::set(
            (0..n)
                .map(|_| arb_value(rng, depth - 1))
                .collect::<Vec<_>>(),
        )
    }
}

/// Random printable-ASCII garbage for the parser fuzzers.
fn arb_text(rng: &mut Rng, max: usize) -> String {
    let n = rng.gen_range(0..=max);
    (0..n)
        .map(|_| (b' ' + (rng.gen_range(0..95usize) as u8)) as char)
        .collect()
}

#[test]
fn eval_never_panics_on_garbage() {
    let db = kola::Db::new(kola::Schema::paper_schema());
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let f = arb_func(&mut rng, 4);
        let v = arb_value(&mut rng, 3);
        // Err is fine; panic is not.
        let _ = kola::eval_func(&db, &f, &v);
    }
}

#[test]
fn typecheck_never_panics_on_garbage() {
    let env = kola::typecheck::TypeEnv::paper_env();
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let f = arb_func(&mut rng, 4);
        let _ = kola::typecheck::typecheck_func(&env, &f);
    }
}

#[test]
fn printer_total_and_parser_never_panics() {
    // Printing is total; reparsing the print must not panic (it may fail
    // only for unknown primitive *keywords*, but the prims generated here
    // are valid syntax).
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let f = arb_func(&mut rng, 4);
        let s = f.to_string();
        let _ = kola::parse::parse_func(&s);
    }
}

#[test]
fn rewriting_garbage_is_total() {
    // Apply the whole catalog to an arbitrary (likely ill-typed) query:
    // rewriting is syntactic and must neither panic nor loop.
    let catalog = kola_rewrite::Catalog::paper();
    let props = kola_rewrite::PropDb::new();
    let rules: Vec<kola_rewrite::Oriented> = ["1", "2", "3", "4", "9", "10", "11"]
        .iter()
        .map(|id| kola_rewrite::Oriented::fwd(catalog.get(id).unwrap()))
        .collect();
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let f = arb_func(&mut rng, 4);
        let q = Query::App(f, Box::new(Query::Extent(Arc::from("P"))));
        let (_out, trace) = kola_rewrite::rewrite_fix(&rules, &q, &props, 500);
        assert!(trace.steps.len() <= 500, "seed {seed}");
    }
}

#[test]
fn governed_rewriting_of_garbage_respects_tight_budgets() {
    // The PR's acceptance gate: ≥1000 random ill-typed terms through the
    // governed fixpoint driver AND the strategy interpreter under a tight
    // budget. Invariants, for every seed:
    //   - no panic (the loop completing is the assertion),
    //   - the step budget is never exceeded,
    //   - the report's step count equals the derivation length.
    use kola_rewrite::strategy::{repeat, Strategy};
    use kola_rewrite::{Budget, Runner, StopReason};

    let catalog = kola_rewrite::Catalog::paper();
    let props = kola_rewrite::PropDb::new();
    let rules: Vec<kola_rewrite::Oriented> = ["1", "2", "3", "4", "9", "10", "11", "8", "13"]
        .iter()
        .filter_map(|id| catalog.get(id).map(kola_rewrite::Oriented::fwd))
        .collect();
    let budget = Budget::with_steps(7).depth(32).term_size(4_096);
    let strategy = Strategy::Seq(vec![
        repeat(Strategy::ApplyAny(
            ["2", "1", "9", "10"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        )),
        kola_rewrite::strategy::fix(&["3", "4", "11"]),
    ]);

    for seed in 0..1_000u64 {
        let mut rng = Rng::seed_from_u64(0xFEED ^ seed);
        let f = arb_func(&mut rng, 5);
        let q = Query::App(f, Box::new(Query::Extent(Arc::from("P"))));

        let r = kola_rewrite::rewrite_fix_governed(&rules, &q, &props, &budget);
        assert!(
            r.report.steps <= budget.max_steps,
            "seed {seed}: {} steps exceed budget",
            r.report.steps
        );
        assert_eq!(
            r.report.steps,
            r.trace.steps.len(),
            "seed {seed}: report and derivation disagree"
        );
        if r.report.stop == StopReason::BudgetExhausted {
            assert_eq!(r.report.steps, budget.max_steps, "seed {seed}");
        }

        let runner = Runner::new(&catalog, &props).with_budget(budget.clone());
        let mut trace = kola_rewrite::Trace::new();
        let (_, _, report) = runner.run_governed(&strategy, q, &mut trace);
        assert!(
            report.steps <= budget.max_steps,
            "seed {seed}: strategy run overspent ({} steps)",
            report.steps
        );
        assert_eq!(
            report.steps,
            trace.steps.len(),
            "seed {seed}: strategy report and derivation disagree"
        );
    }
}

#[test]
fn parser_never_panics_on_random_text() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let s = arb_text(&mut rng, 60);
        let _ = kola::parse::parse_query(&s);
        let _ = kola::parse::parse_func(&s);
        let _ = kola::parse::parse_pred(&s);
        let _ = kola_frontend::parse_oql(&s);
        let _ = kola_aqua::parse_aqua(&s);
        let _ = kola_coko::parse_program(&s);
    }
}

#[test]
fn executor_agrees_or_both_fail() {
    // On arbitrary terms the op-counting executor and the reference
    // evaluator either both succeed with the same value or both fail.
    let db = kola::Db::new(kola::Schema::paper_schema());
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let f = arb_func(&mut rng, 4);
        let v = arb_value(&mut rng, 3);
        let reference = kola::eval_func(&db, &f, &v);
        let mut ex = kola_exec::Executor::new(&db, kola_exec::Mode::Smart);
        let q = Query::App(f, Box::new(Query::Lit(v)));
        let got = ex.run(&q);
        match (reference, got) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "seed {seed}"),
            (Err(_), Err(_)) => {}
            (a, b) => panic!("seed {seed} disagreement: {a:?} vs {b:?}"),
        }
    }
}

#[test]
fn poison_rule_panics_are_caught_and_attributed_by_both_engines() {
    use kola_rewrite::fault::{
        silence_poison_panics, FaultKind, FaultPlan, FaultSpec, StepSelector,
    };
    use kola_rewrite::{Budget, Catalog, Engine, EngineConfig, Oriented, PropDb};

    silence_poison_panics();
    let catalog = Catalog::paper();
    let props = PropDb::new();
    // Rule 2 (id ∘ f ≡ f) is the only rule in this list that fires on an
    // id tower, so a Panic fault on rule 2 must unwind from both engines.
    let rules = vec![
        Oriented::fwd(catalog.get("2").unwrap()),
        Oriented::fwd(catalog.get("9").unwrap()),
    ];
    let q = kola::parse::parse_query("id . id . age ! P").unwrap();
    let faults = FaultPlan::new().with(FaultSpec {
        rule_id: "2".into(),
        at: StepSelector::Always,
        kind: FaultKind::Panic,
    });
    let budget = Budget::default();

    let boxed = kola_rewrite::try_rewrite_fix_with(&rules, &q, &props, &budget, &faults);
    let fast = Engine::new(rules.clone(), &props, EngineConfig::fast())
        .try_normalize_with(&q, &budget, &faults);
    for (name, r) in [("boxed", &boxed), ("fast", &fast)] {
        let err = r
            .as_ref()
            .expect_err(&format!("{name}: poison rule must unwind"));
        assert_eq!(err.rule_id.as_deref(), Some("2"), "{name}");
    }

    // Without the fault, both engines still agree byte-for-byte.
    let clean_boxed =
        kola_rewrite::try_rewrite_fix_with(&rules, &q, &props, &budget, &FaultPlan::new()).unwrap();
    let clean_fast = Engine::new(rules, &props, EngineConfig::fast())
        .try_normalize_with(&q, &budget, &FaultPlan::new())
        .unwrap();
    assert_eq!(clean_boxed.query, clean_fast.query);
    assert_eq!(
        format!("{}", clean_boxed.report),
        format!("{}", clean_fast.report)
    );
}
