//! Failure injection: the evaluator, typechecker, parsers and rewrite
//! engine must *never panic* — ill-typed terms get `Err`, garbage input
//! gets parse errors, and rewriting arbitrary (even ill-typed) terms is
//! total.

use kola::term::{Func, Pred, Query};
use kola::value::Value;
use proptest::prelude::*;
use std::sync::Arc;

/// An *untyped* random function generator — deliberately produces ill-typed
/// terms so the error paths get exercised.
fn arb_func() -> impl Strategy<Value = Func> {
    let leaf = prop_oneof![
        Just(Func::Id),
        Just(Func::Pi1),
        Just(Func::Pi2),
        Just(Func::Flat),
        Just(Func::Bagify),
        Just(Func::Dedup),
        Just(Func::BUnion),
        Just(Func::BFlat),
        Just(Func::SetUnion),
        Just(Func::SetIntersect),
        Just(Func::SetDiff),
        "[a-z]{1,6}".prop_map(|s| Func::Prim(Arc::from(s.as_str()))),
        any::<i64>().prop_map(|i| Func::ConstF(Box::new(Query::Lit(Value::Int(i))))),
    ];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Func::Compose(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Func::PairWith(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Func::Times(Box::new(a), Box::new(b))),
            (arb_pred_leaf(), inner.clone()).prop_map(|(p, f)| Func::Iterate(
                Box::new(p),
                Box::new(f)
            )),
            (arb_pred_leaf(), inner.clone())
                .prop_map(|(p, f)| Func::Iter(Box::new(p), Box::new(f))),
            (arb_pred_leaf(), inner.clone())
                .prop_map(|(p, f)| Func::Join(Box::new(p), Box::new(f))),
            (arb_pred_leaf(), inner.clone())
                .prop_map(|(p, f)| Func::BIterate(Box::new(p), Box::new(f))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Func::Nest(Box::new(a), Box::new(b))),
            (inner.clone(), inner)
                .prop_map(|(a, b)| Func::Unnest(Box::new(a), Box::new(b))),
        ]
    })
}

fn arb_pred_leaf() -> impl Strategy<Value = Pred> {
    prop_oneof![
        Just(Pred::Eq),
        Just(Pred::Lt),
        Just(Pred::Gt),
        Just(Pred::In),
        any::<bool>().prop_map(Pred::ConstP),
    ]
}

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Unit),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        "[a-z]{0,4}".prop_map(|s| Value::str(&s)),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Value::pair(a, b)),
            proptest::collection::vec(inner, 0..4).prop_map(Value::set),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn eval_never_panics_on_garbage(f in arb_func(), v in arb_value()) {
        let db = kola::Db::new(kola::Schema::paper_schema());
        // Err is fine; panic is not (the harness converts panics to fails).
        let _ = kola::eval_func(&db, &f, &v);
    }

    #[test]
    fn typecheck_never_panics_on_garbage(f in arb_func()) {
        let env = kola::typecheck::TypeEnv::paper_env();
        let _ = kola::typecheck::typecheck_func(&env, &f);
    }

    #[test]
    fn printer_total_and_parser_never_panics(f in arb_func()) {
        // Printing is total; reparsing the print must not panic (it may
        // fail only for unknown primitive *keywords*, but random lowercase
        // prims are valid syntax).
        let s = f.to_string();
        let _ = kola::parse::parse_func(&s);
    }

    #[test]
    fn rewriting_garbage_is_total(f in arb_func()) {
        // Apply the whole catalog to an arbitrary (likely ill-typed)
        // query: rewriting is syntactic and must neither panic nor loop.
        let catalog = kola_rewrite::Catalog::paper();
        let props = kola_rewrite::PropDb::new();
        let q = Query::App(f, Box::new(Query::Extent(Arc::from("P"))));
        let rules: Vec<kola_rewrite::Oriented> = ["1", "2", "3", "4", "9", "10", "11"]
            .iter()
            .map(|id| kola_rewrite::Oriented::fwd(catalog.get(id).unwrap()))
            .collect();
        let (_out, trace) =
            kola_rewrite::rewrite_fix(&rules, &q, &props, 500);
        prop_assert!(trace.steps.len() <= 500);
    }

    #[test]
    fn parser_never_panics_on_random_text(s in "[ -~]{0,60}") {
        let _ = kola::parse::parse_query(&s);
        let _ = kola::parse::parse_func(&s);
        let _ = kola::parse::parse_pred(&s);
        let _ = kola_frontend::parse_oql(&s);
        let _ = kola_aqua::parse_aqua(&s);
        let _ = kola_coko::parse_program(&s);
    }

    #[test]
    fn executor_agrees_or_both_fail(f in arb_func(), v in arb_value()) {
        // On arbitrary terms the op-counting executor and the reference
        // evaluator either both succeed with the same value or both fail.
        let db = kola::Db::new(kola::Schema::paper_schema());
        let reference = kola::eval_func(&db, &f, &v);
        let mut ex = kola_exec::Executor::new(&db, kola_exec::Mode::Smart);
        let q = Query::App(f, Box::new(Query::Lit(v)));
        let got = ex.run(&q);
        match (reference, got) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "disagreement: {a:?} vs {b:?}"),
        }
    }
}
