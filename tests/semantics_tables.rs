//! Experiments E1 + E2 — Tables 1 and 2: every combinator's operational
//! semantics, cross-checked three ways on generated data: the reference
//! evaluator, the naive executor, and the smart executor must agree on a
//! query exercising each table row.

use kola::parse::parse_query;
use kola_exec::datagen::{generate, DataSpec};
use kola_exec::{Executor, Mode};

/// One query per table row (plus a few compound forms).
fn table_queries() -> Vec<&'static str> {
    vec![
        // --- Table 1 ---
        "id ! 5",                                                         // id
        "pi1 ! [1, 2]",                                                   // π1
        "pi2 ! [1, 2]",                                                   // π2
        "eq ? [3, 3]",                                                    // eq
        "lt ? [2, 3]",             // lt (paper's leq; converse of gt)
        "leq ? [3, 3]",            // leq
        "gt ? [4, 3]",             // gt
        "geq ? [4, 4]",            // geq
        "in ? [2, {1, 2, 3}]",     // in
        "iterate(Kp(T), age) ! P", // schema primitive
        "iterate(Kp(T), city . addr) ! P union iterate(Kp(T), name) ! P", // ∘ + union
        "iterate(Kp(T), (age, addr)) ! P", // ⟨f, g⟩
        "iterate(Kp(T), age * age) ! join(Kp(T), id) ! [P, P]", // ×
        "Kf(42) ! 7",              // Kf
        "Cf(pi1, 9) ! 1",          // Cf
        "con(gt, pi1, pi2) ! [5, 3]", // con
        "gt @ (pi2, pi1) ? [1, 2]", // ⊕
        "gt & lt ? [1, 1]",        // &
        "gt | lt ? [1, 2]",        // |
        "~gt ? [1, 2]",            // complement (our extension)
        "inv(gt) ? [1, 2]",        // converse (the paper's ⁻¹)
        "Kp(T) ? 0",               // Kp
        "Cp(leq, 25) ? 30",        // Cp
        // --- Table 2 ---
        "flat ! {{1, 2}, {2, 3}}",                          // flat
        "iterate(gt @ (id, Kf(2)), id) ! {1, 2, 3, 4}",     // iterate
        "iter(Kp(T), pi2) ! [0, {1, 2}]",                   // iter
        "join(eq, pi1) ! [{1, 2}, {2, 3}]",                 // join
        "nest(pi1, pi2) ! [{[1, 10], [2, 20]}, {1, 2, 3}]", // nest
        "unnest(pi1, pi2) ! {[1, {10, 11}]}",               // unnest
        // --- compound / schema forms ---
        "iterate(Kp(T), city . addr) ! P",
        "iterate(gt @ (age, Kf(25)), age) ! P",
        "nest(pi1, pi2) . (join(Kp(T), id), pi1) ! [V, P]",
        "sunion ! [{1, 2}, {2, 3}]",
        "sinter ! [{1, 2}, {2, 3}]",
        "sdiff ! [{1, 2}, {2, 3}]",
    ]
}

#[test]
fn reference_and_executors_agree_on_every_row() {
    let db = generate(&DataSpec::small(314));
    for src in table_queries() {
        let q = parse_query(src).unwrap_or_else(|e| panic!("{src}: {e}"));
        let reference = kola::eval_query(&db, &q).unwrap_or_else(|e| panic!("{src}: {e}"));
        for mode in [Mode::Naive, Mode::Smart] {
            let mut ex = Executor::new(&db, mode);
            let got = ex
                .run(&q)
                .unwrap_or_else(|e| panic!("{src} [{mode:?}]: {e}"));
            assert_eq!(got, reference, "{src} under {mode:?}");
        }
    }
}

#[test]
fn specific_table_values() {
    let db = generate(&DataSpec::small(0));
    let cases: Vec<(&str, kola::Value)> = vec![
        ("id ! 5", kola::Value::Int(5)),
        ("pi1 ! [1, 2]", kola::Value::Int(1)),
        ("Kf(42) ! 7", kola::Value::Int(42)),
        ("Cf(pi1, 9) ! 1", kola::Value::Int(9)),
        ("con(gt, pi1, pi2) ! [5, 3]", kola::Value::Int(5)),
        ("con(gt, pi1, pi2) ! [3, 5]", kola::Value::Int(5)),
        ("Kp(T) ? 0", kola::Value::Bool(true)),
        ("Cp(leq, 25) ? 30", kola::Value::Bool(true)),
        ("Cp(leq, 25) ? 20", kola::Value::Bool(false)),
        ("inv(gt) ? [1, 2]", kola::Value::Bool(true)), // 2 > 1
        ("~gt ? [1, 2]", kola::Value::Bool(true)),     // ¬(1 > 2)
        (
            "flat ! {{1, 2}, {2, 3}}",
            kola::Value::set([1, 2, 3].map(kola::Value::Int)),
        ),
        (
            "join(eq, pi1) ! [{1, 2}, {2, 3}]",
            kola::Value::set([kola::Value::Int(2)]),
        ),
    ];
    for (src, want) in cases {
        let q = parse_query(src).unwrap();
        assert_eq!(kola::eval_query(&db, &q).unwrap(), want, "{src}");
    }
}

#[test]
fn table_queries_round_trip_through_printer() {
    for src in table_queries() {
        let q = parse_query(src).unwrap();
        let printed = q.to_string();
        let reparsed =
            parse_query(&printed).unwrap_or_else(|e| panic!("{src} printed as {printed}: {e}"));
        // Structural round trip can differ for literal pairs/sets; check
        // semantic agreement instead.
        let db = generate(&DataSpec::small(314));
        assert_eq!(
            kola::eval_query(&db, &q).unwrap(),
            kola::eval_query(&db, &reparsed).unwrap(),
            "{src} vs {printed}"
        );
    }
}
