//! Strategy-combinator behavior across crates: bottom-up sweeps, fixpoints
//! and their interaction with COKO.

use kola::parse::parse_query;
use kola_coko::{compile, parse_program};
use kola_exec::datagen::{generate, DataSpec};
use kola_rewrite::engine::{rewrite_bottom_up, Oriented, Trace};
use kola_rewrite::strategy::{fix, Runner};
use kola_rewrite::{Catalog, PropDb, Strategy};

fn setup() -> (Catalog, PropDb) {
    (Catalog::paper(), PropDb::new())
}

#[test]
fn bottom_up_sweep_cleans_everywhere_in_one_pass() {
    let (c, p) = setup();
    let rules: Vec<Oriented> = ["1", "2", "9", "10"]
        .iter()
        .map(|id| Oriented::fwd(c.get(id).unwrap()))
        .collect();
    // Identities buried at several depths.
    let q = parse_query("iterate(Kp(T), (pi1 . (id . age, addr), id . city . id)) ! P").unwrap();
    let (out, fires) = rewrite_bottom_up(&rules, &q, &p, 100);
    assert_eq!(out, parse_query("iterate(Kp(T), (age, city)) ! P").unwrap());
    assert!(fires >= 3, "several positions rewritten: {fires}");
}

#[test]
fn bottom_up_agrees_with_fixpoint_on_confluent_sets() {
    // For the confluent cleanup set, BU-sweep and leftmost-outermost
    // fixpoint reach the same normal form.
    let (c, p) = setup();
    let runner = Runner::new(&c, &p);
    let cleanup = ["1", "2", "3", "4", "9", "10"];
    for src in [
        "iterate(Kp(T), id . age . id) ! P",
        "iterate(gt @ id @ (age, Kf(25)), pi1 . (age, addr)) ! P",
        "(pi1, pi2) . (id . age, addr) ! pi1 ! [P, V]",
    ] {
        let q = parse_query(src).unwrap();
        let rules: Vec<Oriented> = cleanup
            .iter()
            .map(|id| Oriented::fwd(c.get(id).unwrap()))
            .collect();
        let (bu, _) = rewrite_bottom_up(&rules, &q, &p, 100);
        let mut trace = Trace::new();
        let (fx, _) = runner.run(&fix(&cleanup), q.clone(), &mut trace);
        assert_eq!(bu, fx, "{src}");
    }
}

#[test]
fn coko_bu_keyword_compiles_and_runs() {
    let (c, p) = setup();
    let program =
        parse_program("TRANSFORMATION Clean BEGIN BU { [1], [2], [9], [10] } END").unwrap();
    let strategy = compile(&program, "Clean").unwrap();
    assert!(matches!(strategy, Strategy::BottomUp(_)));
    let runner = Runner::new(&c, &p);
    let q = parse_query("iterate(Kp(T), pi2 . (age, id . city . addr)) ! P").unwrap();
    let mut trace = Trace::new();
    let (out, _) = runner.run(&strategy, q, &mut trace);
    assert_eq!(out, parse_query("iterate(Kp(T), city . addr) ! P").unwrap());
    // The sweep records a summary step.
    assert!(trace.steps.iter().any(|s| s.rule_id.starts_with("bu")));
}

#[test]
fn bu_is_semantics_preserving() {
    let (c, p) = setup();
    let db = generate(&DataSpec::small(88));
    let rules: Vec<Oriented> = ["1", "2", "3", "4", "5", "9", "10", "11"]
        .iter()
        .map(|id| Oriented::fwd(c.get(id).unwrap()))
        .collect();
    for src in [
        "iterate(Kp(T), city) . iterate(Kp(T), addr) ! P",
        "iterate(Kp(T), pi1 . (age, addr)) ! P",
        "iterate(Kp(T) & gt @ (age, Kf(25)), id . age) ! P",
    ] {
        let q = parse_query(src).unwrap();
        let (out, _) = rewrite_bottom_up(&rules, &q, &p, 100);
        assert_eq!(
            kola::eval_query(&db, &q).unwrap(),
            kola::eval_query(&db, &out).unwrap(),
            "{src}"
        );
    }
}

#[test]
fn nested_repeat_choice_combinations() {
    let (c, p) = setup();
    let runner = Runner::new(&c, &p);
    // REPEAT { [2] | [1] } strips ids from either side.
    let program = parse_program("TRANSFORMATION Strip BEGIN REPEAT { [2] | [1] } END").unwrap();
    let strategy = compile(&program, "Strip").unwrap();
    let q = parse_query("id . age . id . id ! P").unwrap();
    let mut trace = Trace::new();
    let (out, _) = runner.run(&strategy, q, &mut trace);
    assert_eq!(out, parse_query("age ! P").unwrap());
}
