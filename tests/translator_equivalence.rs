//! Experiment E10 support — the AQUA → KOLA translator is semantics
//! preserving: for randomly generated AQUA queries, the original and the
//! translation compute the same value on generated databases, and the size
//! blowup respects §4.2's O(mn) bound.

use kola_aqua::ast::{CmpOp, Expr, Lambda};
use kola_exec::datagen::{generate, DataSpec};
use kola_exec::rng::Rng;
use kola_frontend::{measure, sweep_query, translate_query};

/// A generator for well-scoped AQUA queries over the paper schema, set
/// typed at every level so both evaluators accept them.
///
/// Up to `depth` levels of app/sel/flatten over Person sets; projections
/// stay within schema reach.
fn arb_person_query(rng: &mut Rng, depth: u32) -> Expr {
    if depth == 0 || rng.gen_bool(0.25) {
        return Expr::extent("P");
    }
    let src = arb_person_query(rng, depth - 1);
    match rng.gen_range(0..3u32) {
        0 => {
            // sel(λx. x.age CMP k)(src)
            let k = rng.gen_range(-5..60i64);
            let op = [CmpOp::Gt, CmpOp::Lt, CmpOp::Geq, CmpOp::Leq][rng.gen_range(0..4usize)];
            Expr::sel(
                Lambda::new("x", Expr::cmp(op, Expr::var("x").attr("age"), Expr::int(k))),
                src,
            )
        }
        1 => {
            // flatten(app(λx. x.child)(src))
            Expr::Flatten(Box::new(Expr::app(
                Lambda::new("x", Expr::var("x").attr("child")),
                src,
            )))
        }
        _ => Expr::app(Lambda::new("x", Expr::var("x")), src),
    }
}

#[test]
fn translation_preserves_semantics() {
    for seed in 0..64u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let q = arb_person_query(&mut rng, 4);
        let db = generate(&DataSpec::small(seed % 32));
        let aqua_val = kola_aqua::eval_closed(&db, &q).expect("aqua eval");
        let k = translate_query(&q).expect("translates");
        let kola_val = kola::eval_query(&db, &k).expect("kola eval");
        assert_eq!(aqua_val, kola_val, "seed {seed}");
    }
}

#[test]
fn translation_size_obeys_o_mn() {
    for seed in 0..64u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let q = arb_person_query(&mut rng, 5);
        let r = measure(&q).expect("measures");
        let m = r.env_depth.max(1);
        assert!(
            r.kola_size <= 4 * m * r.aqua_size + 16,
            "seed {seed}: size {} vs bound 4*{}*{}",
            r.kola_size,
            m,
            r.aqua_size
        );
    }
}

#[test]
fn sweep_family_translates_and_agrees() {
    let mut db = generate(&DataSpec::small(5));
    let p = db.extent("P").unwrap();
    db.bind_extent("Q", p);
    for m in 1..=4 {
        for w in [0, 2] {
            let q = sweep_query(m, w);
            let aqua_val = kola_aqua::eval_closed(&db, &q).unwrap();
            let k = translate_query(&q).unwrap();
            let kola_val = kola::eval_query(&db, &k).unwrap();
            assert_eq!(aqua_val, kola_val, "m={m} w={w}");
        }
    }
}

#[test]
fn ratio_under_two_for_paper_scale_queries() {
    // §4.2: "translated queries are less than twice the size of the
    // queries they translate" — holds for the m ≤ 2 queries of the figures.
    for q in [
        kola_aqua::rules::query_t1(),
        kola_aqua::rules::query_t2(),
        kola_aqua::rules::query_a3(),
        kola_aqua::rules::query_a4(),
    ] {
        let r = measure(&q).unwrap();
        assert!(r.ratio() < 2.0, "{q}: ratio {}", r.ratio());
    }
}
