//! Experiments E6 + E12 — the rule pool is machine-verified.
//!
//! The paper: "we have constructed proofs of over 500 rules … verified
//! using the Larch theorem proving tool". Our substitute (DESIGN.md §4):
//! every rule in the catalog is checked by randomized, type-directed
//! instantiation. A single counterexample fails this test.

use kola::typecheck::TypeEnv;
use kola_exec::datagen::{generate, DataSpec};
use kola_rewrite::{Catalog, RuleSource};
use kola_verify::{verify_catalog_cached, VerifyCache};

#[test]
fn entire_catalog_verifies() {
    let env = TypeEnv::paper_env();
    let db = generate(&DataSpec::small(2024));
    let catalog = Catalog::paper();
    // Parallel + fingerprint-cached: a warm `target/` makes this test
    // near-instant; any rule, trial-budget, or generator change re-runs
    // exactly the affected rules.
    let mut cache = VerifyCache::load_default();
    let reports = verify_catalog_cached(&env, &db, &catalog, 25, 0xBEEF, &mut cache);
    let failures: Vec<String> = reports
        .iter()
        .filter(|r| !r.verified())
        .map(|r| r.to_string())
        .collect();
    assert!(
        failures.is_empty(),
        "unverified rules:\n{}",
        failures.join("\n")
    );
    // The paper claims "proofs of over 500 rules"; the closed catalog
    // matches that operating point with every rule machine-verified.
    assert!(
        reports.len() >= 500,
        "catalog should be at the paper's 500-rule scale, got {}",
        reports.len()
    );
}

#[test]
fn figure_rules_all_present_and_verified() {
    let env = TypeEnv::paper_env();
    let db = generate(&DataSpec::small(11));
    let catalog = Catalog::paper();
    // All 24 numbered rules of Figures 5 and 8.
    for id in (1..=24).map(|i| i.to_string()) {
        let rule = catalog
            .get(&id)
            .unwrap_or_else(|| panic!("rule {id} missing"));
        let report = kola_verify::check_rule(&env, &db, rule, 25, 7 + id.len() as u64);
        assert!(report.verified(), "{report}");
    }
}

#[test]
fn catalog_statistics_match_claims() {
    // E11: the 24 paper rules are a small fraction of a mostly
    // general-purpose pool; every rule is code-free by construction.
    let catalog = Catalog::paper();
    let f5 = catalog
        .rules()
        .iter()
        .filter(|r| r.source == RuleSource::Figure5)
        .count();
    let f8 = catalog
        .rules()
        .iter()
        .filter(|r| r.source == RuleSource::Figure8)
        .count();
    let ext = catalog
        .rules()
        .iter()
        .filter(|r| r.source == RuleSource::Extended)
        .count();
    let closed = catalog
        .rules()
        .iter()
        .filter(|r| r.source == RuleSource::Closure)
        .count();
    assert_eq!(f5, 16);
    assert_eq!(f8, 8);
    assert!(ext > 2 * (f5 + f8), "pool dwarfs the figures: {ext}");
    assert!(
        closed > ext,
        "the systematic closure dwarfs the handwritten pool: {closed}"
    );
    assert!(
        catalog.len() >= 500,
        "the closed pool reaches the paper's 500-rule claim: {}",
        catalog.len()
    );
    // Code-free: a Rule literally has no code slot; double-check that
    // preconditions are declarative property demands only.
    for rule in catalog.rules() {
        for pre in &rule.preconditions {
            let _ = pre.prop; // a PropKind, not a callback
        }
    }
}

#[test]
fn unsound_variants_of_paper_rules_are_rejected() {
    // Mutate each of a few figure rules and confirm verification catches
    // the mutation — evidence the harness has teeth (E12).
    use kola_rewrite::rule::Rule;
    let env = TypeEnv::paper_env();
    let db = generate(&DataSpec::small(3));
    let mutants = [
        // 9 with the wrong projection.
        Rule::func("m9", "bad", "pi1 . ($f, $g)", "$g"),
        // 11 dropping the predicate adjustment.
        Rule::func(
            "m11",
            "bad",
            "iterate(%p, $f) . iterate(%q, $g)",
            "iterate(%q, $f . $g)",
        ),
        // 13 without the converse.
        Rule::pred("m13", "bad", "%p @ ($f, Kf(^k))", "Cp(%p, ^k) @ $f"),
        // 5 with false.
        Rule::pred("m5", "bad", "Kp(F) & %p", "%p"),
        // 19 swapping the join inputs.
        Rule::query(
            "m19",
            "bad",
            "iterate(Kp(T), (id, Kf(^B))) ! ^A",
            "nest(pi1, pi2) . (join(Kp(T), id), pi1) ! [^B, ^A]",
        ),
    ];
    for m in mutants {
        let report = kola_verify::check_rule(&env, &db, &m, 150, 99);
        assert!(!report.verified(), "mutant not caught: {report}");
    }
}
